// Tests for the adversary models and attack harness: insider/outsider
// views, row reconstruction from captured shards, and the three attack
// drivers (regression, clustering, association rules) -- including the
// paper's central claim that fragmentation degrades each attack.
#include <gtest/gtest.h>

#include <limits>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "workload/bidding.hpp"
#include "workload/gps.hpp"
#include "workload/patients.hpp"
#include "workload/transactions.hpp"

namespace cshield::attack {
namespace {

using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;

/// Uploads the Hercules table as record-aligned plaintext chunks with no
/// parity (the paper's plain "split rows across providers" scenario) and
/// returns the configured distributor.
struct BiddingWorld {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config;
  std::unique_ptr<CloudDataDistributor> cdd;
  workload::RecordCodec codec{workload::bidding_columns()};
  mining::Dataset table = workload::hercules_table();

  explicit BiddingWorld(PrivacyLevel pl = PrivacyLevel::kModerate,
                        std::size_t rows_per_chunk = 4) {
    config.default_raid = raid::RaidLevel::kNone;  // plaintext single copies
    config.placement = core::PlacementMode::kUniformSpread;
    // Chunk size = rows_per_chunk records at every level.
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = rows_per_chunk * codec.record_size();
    }
    cdd = std::make_unique<CloudDataDistributor>(registry, config);
    EXPECT_TRUE(cdd->register_client("Hercules").ok());
    EXPECT_TRUE(cdd->add_password("Hercules", "12th-labour", pl).ok());
    PutOptions opts;
    opts.privacy_level = pl;
    opts.record_align = codec.record_size();
    EXPECT_TRUE(cdd->put_file("Hercules", "12th-labour", "bids.tbl",
                              codec.encode(table), opts)
                    .ok());
  }
};

TEST(AdversaryTest, InsiderSeesOnlyOneProvidersObjects) {
  BiddingWorld world;
  std::size_t total = 0;
  for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
    const AdversaryView view = insider(world.registry, p);
    EXPECT_EQ(view.objects.size(), world.registry.at(p).object_count());
    total += view.objects.size();
  }
  EXPECT_EQ(total, 3u);  // 12 rows / 4 rows-per-chunk = 3 chunks
}

TEST(AdversaryTest, OutsiderPoolsMultipleProviders) {
  BiddingWorld world;
  std::vector<ProviderIndex> all;
  for (ProviderIndex p = 0; p < world.registry.size(); ++p) all.push_back(p);
  const AdversaryView view = compromise(world.registry, all);
  EXPECT_EQ(view.objects.size(), 3u);
  EXPECT_GT(view.total_bytes, 0u);
}

TEST(AdversaryTest, ReconstructsWholeRowsFromChunks) {
  BiddingWorld world;
  std::vector<ProviderIndex> all;
  for (ProviderIndex p = 0; p < world.registry.size(); ++p) all.push_back(p);
  const mining::Dataset rows =
      reconstruct_rows(compromise(world.registry, all), world.codec);
  EXPECT_EQ(rows.num_rows(), 12u);
  // Row multiset matches the original (order may differ across chunks).
  double bid_sum = 0.0;
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    bid_sum += rows.at(r, rows.column_index("Bid"));
  }
  double expected = 0.0;
  for (std::size_t r = 0; r < world.table.num_rows(); ++r) {
    expected += world.table.at(r, world.table.column_index("Bid"));
  }
  EXPECT_DOUBLE_EQ(bid_sum, expected);
}

TEST(AdversaryTest, CoverageMetric) {
  mining::Dataset d({"x"});
  d.add_row({1});
  d.add_row({2});
  EXPECT_DOUBLE_EQ(coverage(d, 8), 0.25);
  EXPECT_DOUBLE_EQ(coverage(d, 0), 0.0);
  EXPECT_DOUBLE_EQ(coverage(d, 1), 1.0);  // capped
}

TEST(RegressionAttackTest, FullPoolRecoversEquationFragmentMisleads) {
  BiddingWorld world;
  Result<mining::LinearModel> reference = mining::fit_linear(
      world.table, workload::bidding_features(), "Bid");
  ASSERT_TRUE(reference.ok());

  // Outsider with every provider: equation matches the full-data one.
  std::vector<ProviderIndex> all;
  for (ProviderIndex p = 0; p < world.registry.size(); ++p) all.push_back(p);
  const mining::Dataset full_rows =
      reconstruct_rows(compromise(world.registry, all), world.codec);
  const RegressionAttackResult full_attack = regression_attack(
      full_rows, workload::bidding_features(), "Bid", reference.value(),
      world.table);
  ASSERT_TRUE(full_attack.mining_succeeded);
  EXPECT_LT(full_attack.coefficient_error, 1e-6);

  // Insider at each provider holding data: 4 rows -> misleading equation.
  bool any_insider = false;
  for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
    if (world.registry.at(p).object_count() == 0) continue;
    const mining::Dataset frag_rows =
        reconstruct_rows(insider(world.registry, p), world.codec);
    const RegressionAttackResult frag = regression_attack(
        frag_rows, workload::bidding_features(), "Bid", reference.value(),
        world.table);
    any_insider = true;
    if (frag.mining_succeeded) {
      EXPECT_GT(frag.coefficient_error, full_attack.coefficient_error);
      EXPECT_GT(frag.prediction_rmse, full_attack.prediction_rmse);
    }
  }
  EXPECT_TRUE(any_insider);
}

TEST(RegressionAttackTest, TinyChunksForceMiningFailure) {
  // 1 row per chunk: an insider sees single rows; a regression with 4
  // parameters cannot be fit from any one provider's holdings unless it
  // received >= 4 chunks.
  BiddingWorld world(PrivacyLevel::kModerate, /*rows_per_chunk=*/1);
  Result<mining::LinearModel> reference = mining::fit_linear(
      world.table, workload::bidding_features(), "Bid");
  ASSERT_TRUE(reference.ok());
  std::size_t failures = 0;
  std::size_t holders = 0;
  for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
    if (world.registry.at(p).object_count() == 0) continue;
    ++holders;
    const mining::Dataset rows =
        reconstruct_rows(insider(world.registry, p), world.codec);
    const RegressionAttackResult r = regression_attack(
        rows, workload::bidding_features(), "Bid", reference.value(),
        world.table);
    if (!r.mining_succeeded) ++failures;
  }
  EXPECT_GT(holders, 1u);
  EXPECT_GT(failures, 0u) << "some provider should hold too little to mine";
}

TEST(ClusteringAttackTest, FragmentationChurnsClusters) {
  workload::GpsConfig cfg;  // 30 users, 3000 obs each
  const workload::GpsTraces traces = workload::generate_gps(cfg);
  const mining::Dataset full_features =
      workload::gps_user_features(traces.observations, cfg.num_users);
  const mining::Dendrogram reference = mining::cluster_rows(
      mining::standardize(full_features), mining::Linkage::kAverage);

  // Full data: the attack reproduces the reference tree exactly.
  const ClusteringAttackResult full =
      clustering_attack(full_features, reference, 4);
  ASSERT_TRUE(full.mining_succeeded);
  EXPECT_NEAR(full.ari_vs_reference, 1.0, 1e-9);
  EXPECT_NEAR(full.cophenetic_corr, 1.0, 1e-9);

  // A 500-observation-per-user fragment (the paper's Figs. 5-6 setting):
  // entities move between clusters.
  std::vector<std::size_t> frag_rows;
  const std::size_t obs_col = 0;  // "user"
  (void)obs_col;
  // Take the first 500 observations of each user (time-window fragment).
  std::vector<std::size_t> idx;
  std::vector<std::size_t> per_user(cfg.num_users, 0);
  const std::size_t user_col = traces.observations.column_index("user");
  for (std::size_t r = 0; r < traces.observations.num_rows(); ++r) {
    const auto u =
        static_cast<std::size_t>(traces.observations.at(r, user_col));
    if (per_user[u] < 500) {
      idx.push_back(r);
      ++per_user[u];
    }
  }
  const mining::Dataset frag_features = workload::gps_user_features(
      traces.observations.select_rows(idx), cfg.num_users);
  const ClusteringAttackResult frag =
      clustering_attack(frag_features, reference, 4);
  ASSERT_TRUE(frag.mining_succeeded);
  EXPECT_LT(frag.ari_vs_reference, full.ari_vs_reference);
  EXPECT_GT(frag.churn_vs_reference, 0.0)
      << "entities should move clusters, as in Figs. 5-6";
  EXPECT_LT(frag.cophenetic_corr, 1.0);
}

TEST(ClusteringAttackTest, WrongEntityCountFailsCleanly) {
  const mining::Dendrogram reference =
      mining::cluster_rows(workload::gps_user_features(
                               workload::generate_gps({}).observations, 30),
                           mining::Linkage::kAverage);
  mining::Dataset wrong({"a"});
  wrong.add_row({1});
  const ClusteringAttackResult r = clustering_attack(wrong, reference, 3);
  EXPECT_FALSE(r.mining_succeeded);
}

TEST(RuleAttackTest, FragmentReducesRecall) {
  workload::TransactionConfig cfg;
  cfg.num_transactions = 3000;
  const workload::TransactionWorkload w = workload::generate_transactions(cfg);
  mining::AprioriOptions opts;
  opts.min_support = 0.02;
  opts.min_confidence = 0.5;
  Result<mining::AprioriResult> reference = mining::apriori(w.transactions, opts);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference.value().rules.empty());

  // Full access reproduces the reference rule set.
  const RuleAttackResult full =
      rule_attack(w.transactions, reference.value().rules, opts);
  ASSERT_TRUE(full.mining_succeeded);
  EXPECT_DOUBLE_EQ(full.comparison.recall, 1.0);

  // A 1% fragment starves support counts: spurious itemsets clear the
  // (now tiny) absolute support bar, so the attacker's rule set is
  // polluted -- precision collapses well below the full-data attack.
  std::vector<mining::Transaction> frag(
      w.transactions.begin(), w.transactions.begin() + 30);
  const RuleAttackResult partial =
      rule_attack(frag, reference.value().rules, opts);
  ASSERT_TRUE(partial.mining_succeeded);
  EXPECT_DOUBLE_EQ(full.comparison.precision, 1.0);
  EXPECT_LT(partial.comparison.precision, full.comparison.precision);
}

TEST(RuleAttackTest, EmptyViewFailsMining) {
  const RuleAttackResult r = rule_attack({}, {}, mining::AprioriOptions{});
  EXPECT_FALSE(r.mining_succeeded);
}

// --- classification attack (SII-A "terminal illness" threat) ---------------------

class ClassificationAttack : public ::testing::TestWithParam<Classifier> {};

TEST_P(ClassificationAttack, FullDataBeatsStarvedFragment) {
  workload::PatientConfig cfg;
  cfg.num_patients = 2400;
  const mining::Dataset all = workload::generate_patients(cfg);
  const mining::Dataset train = all.slice_rows(0, 2000);
  const mining::Dataset test = all.slice_rows(2000, 2400);

  const ClassificationAttackResult full =
      classification_attack(train, test, "risk", GetParam());
  ASSERT_TRUE(full.mining_succeeded) << classifier_name(GetParam());
  EXPECT_GT(full.test_accuracy, 0.6) << classifier_name(GetParam());

  // A 20-row fragment: much worse (or outright failed) prediction.
  const ClassificationAttackResult tiny =
      classification_attack(train.slice_rows(0, 20), test, "risk",
                            GetParam());
  if (tiny.mining_succeeded) {
    EXPECT_LT(tiny.test_accuracy, full.test_accuracy)
        << classifier_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, ClassificationAttack,
                         ::testing::Values(Classifier::kNaiveBayes,
                                           Classifier::kDecisionTree,
                                           Classifier::kKnn),
                         [](const auto& info) {
                           std::string name(classifier_name(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ClassificationAttackTest, EmptyViewFails) {
  const mining::Dataset empty(workload::patient_columns());
  const ClassificationAttackResult r = classification_attack(
      empty, empty, "risk", Classifier::kDecisionTree);
  EXPECT_FALSE(r.mining_succeeded);
}

// --- colluding coalitions (PR 8) --------------------------------------------

TEST(CoalitionTest, EnumeratesAllKOfNInLexOrder) {
  const auto sets = coalitions(4, 2, /*max_sets=*/64);
  ASSERT_EQ(sets.size(), 6u);  // C(4,2)
  EXPECT_EQ(sets.front(), (std::vector<ProviderIndex>{0, 1}));
  EXPECT_EQ(sets[1], (std::vector<ProviderIndex>{0, 2}));
  EXPECT_EQ(sets.back(), (std::vector<ProviderIndex>{2, 3}));
  // Every set is strictly increasing (sorted, distinct members).
  for (const auto& s : sets) {
    for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  }
}

TEST(CoalitionTest, DegenerateArgumentsYieldNothing) {
  EXPECT_TRUE(coalitions(5, 0).empty());
  EXPECT_TRUE(coalitions(5, 6).empty());
  EXPECT_TRUE(coalitions(0, 1).empty());
  EXPECT_TRUE(coalitions(5, 2, 0).empty());
}

TEST(CoalitionTest, FullSetAndSingletonsAreCoveredExactly) {
  const auto all = coalitions(6, 6);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].size(), 6u);
  const auto singles = coalitions(6, 1);
  ASSERT_EQ(singles.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(singles[i], (std::vector<ProviderIndex>{
                              static_cast<ProviderIndex>(i)}));
  }
}

TEST(CoalitionTest, SamplingCapsAndIsDeterministicAndDistinct) {
  // C(12,3) = 220 > 32: seeded sampling kicks in.
  const auto a = coalitions(12, 3, 32, 0xABCD);
  const auto b = coalitions(12, 3, 32, 0xABCD);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a, b);  // same seed, same sample
  const auto c = coalitions(12, 3, 32, 0xDCBA);
  EXPECT_NE(a, c);  // the seed is live
  for (const auto& s : a) {
    ASSERT_EQ(s.size(), 3u);
    EXPECT_LT(s[0], s[1]);
    EXPECT_LT(s[1], s[2]);
    EXPECT_LT(s[2], 12u);
  }
  // Distinct coalitions only.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
}

TEST(CollusionSweepTest, WorstCoalitionDominatesAndFindsUnprotectedData) {
  workload::BiddingGenerator gen(0xC011);
  const mining::Dataset table = gen.generate(256, 120.0);
  const workload::RecordCodec codec{workload::bidding_columns()};
  storage::ProviderRegistry registry = storage::make_default_registry(6);
  core::DistributorConfig config;
  config.default_raid = raid::RaidLevel::kNone;
  config.placement = core::PlacementMode::kUniformSpread;
  core::CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("victim").ok());
  ASSERT_TRUE(cdd.add_password("victim", "pw", PrivacyLevel::kPublic).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;
  opts.record_align = codec.record_size();
  ASSERT_TRUE(
      cdd.put_file("victim", "pw", "bids", codec.encode(table), opts).ok());

  const CollusionSweep sweep =
      collusion_sweep(registry, codec, 3, table.num_rows());
  EXPECT_EQ(sweep.coalitions_tried, 20u);  // C(6,3)
  EXPECT_EQ(sweep.worst_coalition.size(), 3u);
  // Plaintext chunks spread over 6 providers: 3 colluders hold roughly half
  // the table, and the worst coalition is at least the mean.
  EXPECT_GT(sweep.worst_coverage, 0.25);
  EXPECT_GE(sweep.worst_coverage, sweep.mean_coverage);
  // A bigger coalition can only help the attacker.
  const CollusionSweep all =
      collusion_sweep(registry, codec, 6, table.num_rows());
  EXPECT_EQ(all.coalitions_tried, 1u);
  EXPECT_GE(all.worst_coverage, sweep.worst_coverage);
}

TEST(SanitizeTest, DropsPoisonedRows) {
  mining::Dataset d({"a", "b"});
  d.add_row({1.0, 2.0});
  d.add_row({std::numeric_limits<double>::quiet_NaN(), 1.0});
  d.add_row({3.0, std::numeric_limits<double>::infinity()});
  d.add_row({1e15, 0.0});
  d.add_row({4.0, 5.0});
  const mining::Dataset clean = sanitize_rows(d);
  ASSERT_EQ(clean.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(clean.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(clean.at(1, 1), 5.0);
}

}  // namespace
}  // namespace cshield::attack

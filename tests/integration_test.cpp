// End-to-end integration tests across every layer: a client distributes a
// real workload through the CloudDataDistributor, providers fail and are
// repaired, adversaries attack, and the privacy/availability story of the
// paper holds together.
#include <gtest/gtest.h>

#include <set>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "core/multi_distributor.hpp"
#include "crypto/aes.hpp"
#include "storage/provider_registry.hpp"
#include "workload/bidding.hpp"
#include "workload/gps.hpp"
#include "workload/records.hpp"

namespace cshield {
namespace {

using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;

TEST(IntegrationTest, FullLifecycleWithOutagesAndRepair) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config;
  config.default_raid = raid::RaidLevel::kRaid5;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.1;
  CloudDataDistributor cdd(registry, config);

  ASSERT_TRUE(cdd.register_client("Hercules").ok());
  ASSERT_TRUE(
      cdd.add_password("Hercules", "lion", PrivacyLevel::kHigh).ok());

  // Upload three files at different sensitivities.
  Rng rng(77);
  std::map<std::string, Bytes> files;
  int pl = 1;
  for (const char* name : {"ledger.db", "contracts.tbl", "notes.txt"}) {
    Bytes data(8000 + rng.below(20000));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    PutOptions opts;
    opts.privacy_level = privacy_level_from_int(pl++);
    ASSERT_TRUE(cdd.put_file("Hercules", "lion", name, data, opts).ok());
    files[name] = std::move(data);
  }

  // Outage + permanent loss, then repair, then read everything back.
  registry.at(2).set_online(false);
  Result<std::size_t> repaired = cdd.repair();
  // repair() skips offline shards it can't probe but can still be blocked;
  // with RAID-5 and one provider down every file must still read.
  ASSERT_TRUE(repaired.ok()) << repaired.status().to_string();
  for (const auto& [name, data] : files) {
    Result<Bytes> back = cdd.get_file("Hercules", "lion", name);
    ASSERT_TRUE(back.ok()) << name << ": " << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), data)) << name;
  }

  // Update + snapshot + remove on one file.
  const Bytes v2 = to_bytes("fresh chunk contents");
  ASSERT_TRUE(cdd.update_chunk("Hercules", "lion", "notes.txt", 0, v2).ok());
  EXPECT_TRUE(
      equal(cdd.get_chunk("Hercules", "lion", "notes.txt", 0).value(), v2));
  ASSERT_TRUE(cdd.get_chunk_snapshot("Hercules", "lion", "notes.txt", 0).ok());
  ASSERT_TRUE(cdd.remove_file("Hercules", "lion", "notes.txt").ok());
  EXPECT_EQ(cdd.get_file("Hercules", "lion", "notes.txt").status().code(),
            ErrorCode::kNotFound);
}

TEST(IntegrationTest, InsiderLearnsLessAsProvidersMultiply) {
  // The paper's core quantitative claim: more providers -> each insider
  // holds a smaller data fraction -> worse mining. Sweep n in {1, 3, 12}
  // with the synthetic bidding workload.
  workload::BiddingGenerator gen(5);
  const mining::Dataset table = gen.generate(1200, 100.0);
  const workload::RecordCodec codec{workload::bidding_columns()};
  Result<mining::LinearModel> reference = mining::fit_linear(
      table, workload::bidding_features(), "Bid");
  ASSERT_TRUE(reference.ok());

  for (std::size_t n : {1u, 3u, 12u}) {
    storage::ProviderRegistry registry = storage::make_default_registry(n);
    DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = 4 * codec.record_size();
    }
    CloudDataDistributor cdd(registry, config);
    ASSERT_TRUE(cdd.register_client("Victim").ok());
    ASSERT_TRUE(
        cdd.add_password("Victim", "pw", PrivacyLevel::kPublic).ok());
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kPublic;
    opts.record_align = codec.record_size();
    ASSERT_TRUE(cdd.put_file("Victim", "pw", "bids", codec.encode(table),
                             opts)
                    .ok());

    // Best insider = the provider holding the most rows.
    double best_coverage = 0.0;
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      const mining::Dataset rows =
          attack::reconstruct_rows(attack::insider(registry, p), codec);
      best_coverage = std::max(
          best_coverage, attack::coverage(rows, table.num_rows()));
    }
    if (n == 1) {
      EXPECT_DOUBLE_EQ(best_coverage, 1.0);
    } else {
      EXPECT_LT(best_coverage, 1.0);
      EXPECT_LE(best_coverage, 2.0 / static_cast<double>(n) + 0.2);
    }
  }
}

TEST(IntegrationTest, EncryptionBaselineInteroperatesWithDistribution) {
  // SVII-E: "Concerned clients can also use encryption along with
  // fragmentation." Encrypt client-side, distribute ciphertext, read back,
  // decrypt.
  // 16 providers so the PL3 tier has enough members for a 4-shard stripe.
  storage::ProviderRegistry registry = storage::make_default_registry(16);
  CloudDataDistributor cdd(registry, DistributorConfig{});
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "k", PrivacyLevel::kHigh).ok());

  Rng rng(9);
  crypto::AesKey key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
  Bytes plaintext(5000);
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.below(256));

  const Bytes ciphertext = crypto::aes128_ctr(key, 42, plaintext);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(cdd.put_file("C", "k", "enc.bin", ciphertext, opts).ok());
  Result<Bytes> back = cdd.get_file("C", "k", "enc.bin");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(crypto::aes128_ctr(key, 42, back.value()), plaintext));

  // An insider sees only ciphertext shards: no stored object equals any
  // plaintext slice.
  for (ProviderIndex p = 0; p < registry.size(); ++p) {
    const attack::AdversaryView view = attack::insider(registry, p);
    for (const Bytes& obj : view.objects) {
      EXPECT_FALSE(equal(obj, BytesView(plaintext.data(),
                                        std::min(obj.size(),
                                                 plaintext.size()))));
    }
  }
}

TEST(IntegrationTest, MultiDistributorServesConcurrentClients) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config;
  config.stripe_data_shards = 3;
  core::DistributorGroup group(registry, config, 3);

  // Several clients, several files each, all readable from any front-end.
  std::map<std::pair<std::string, std::string>, Bytes> expected;
  Rng rng(11);
  for (const char* client : {"A", "B", "C", "D"}) {
    ASSERT_TRUE(group.register_client(client).ok());
    ASSERT_TRUE(group.add_password(client, "pw", PrivacyLevel::kHigh).ok());
    for (int fnum = 0; fnum < 3; ++fnum) {
      Bytes data(1000 + rng.below(9000));
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
      const std::string fname = "f" + std::to_string(fnum);
      PutOptions opts;
      opts.privacy_level = PrivacyLevel::kModerate;
      ASSERT_TRUE(group.put_file(client, "pw", fname, data, opts).ok());
      expected[{client, fname}] = std::move(data);
    }
  }
  for (const auto& [key, data] : expected) {
    Result<Bytes> back = group.get_file(key.first, "pw", key.second);
    ASSERT_TRUE(back.ok()) << key.first << "/" << key.second;
    EXPECT_TRUE(equal(back.value(), data));
  }

  // Clients are isolated: A's password does not open B's namespace --
  // B's files simply don't exist under A.
  EXPECT_EQ(group.get_file("A", "pw", "zzz").status().code(),
            ErrorCode::kNotFound);
}

TEST(IntegrationTest, GpsWorkloadThroughDistributorMatchesDirectFragments) {
  // Distribute the GPS observation table through the real system, then
  // reconstruct what one insider sees and verify it equals a contiguous
  // row fragment -- tying the storage path to the mining experiments.
  workload::GpsConfig cfg;
  cfg.num_users = 10;
  cfg.observations_per_user = 300;
  const workload::GpsTraces traces = workload::generate_gps(cfg);
  const workload::RecordCodec codec{
      traces.observations.column_names()};

  storage::ProviderRegistry registry = storage::make_default_registry(6);
  DistributorConfig config;
  config.default_raid = raid::RaidLevel::kNone;
  for (auto& s : config.chunk_sizes.size_bytes) {
    s = 100 * codec.record_size();
  }
  CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("lbs-app").ok());
  ASSERT_TRUE(cdd.add_password("lbs-app", "pw", PrivacyLevel::kHigh).ok());
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  opts.record_align = codec.record_size();
  ASSERT_TRUE(cdd.put_file("lbs-app", "pw", "gps.tbl",
                           codec.encode(traces.observations), opts)
                  .ok());

  std::size_t pooled_rows = 0;
  for (ProviderIndex p = 0; p < registry.size(); ++p) {
    const mining::Dataset rows =
        attack::reconstruct_rows(attack::insider(registry, p), codec);
    pooled_rows += rows.num_rows();
    if (rows.num_rows() == 0) continue;
    // Whole records only: every row must carry a valid user id / hour.
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
      const double u = rows.at(r, rows.column_index("user"));
      EXPECT_GE(u, 0.0);
      EXPECT_LT(u, 10.0);
    }
  }
  EXPECT_EQ(pooled_rows, traces.observations.num_rows());
}

}  // namespace
}  // namespace cshield

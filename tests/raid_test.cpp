// Tests for the RAID/erasure-coding layer. The heart is a parameterized
// sweep proving decode() recovers the payload for EVERY erasure pattern each
// level claims to tolerate, and refuses (rather than mis-decodes) beyond.
// The sweep and the reconstruct tests also run under both kernel dispatch
// arms (forced scalar vs the widest SIMD the host has) and require
// bit-identical stripes from each.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "crypto/gf256_kernels.hpp"
#include "raid/raid.hpp"
#include "util/random.hpp"

namespace cshield::raid {
namespace {

namespace kern = gf256::kernels;

Bytes random_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::vector<std::optional<Bytes>> to_optional(const EncodedStripe& stripe) {
  return shard_copies(stripe);
}

/// Restores the dispatch arm a test overrode, even on assertion exit.
class ScopedArm {
 public:
  explicit ScopedArm(kern::Arm arm) : prev_(kern::set_active_arm(arm)) {}
  ~ScopedArm() { kern::set_active_arm(prev_); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  kern::Arm prev_;
};

// --- StripeLayout -------------------------------------------------------------

TEST(StripeLayoutTest, MakeDerivesParityCounts) {
  EXPECT_EQ(StripeLayout::make(RaidLevel::kNone, 1).total_shards(), 1u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid0, 4).total_shards(), 4u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid1, 1, 2).total_shards(), 3u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid5, 4).total_shards(), 5u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid6, 4).total_shards(), 6u);
}

TEST(StripeLayoutTest, FaultToleranceByLevel) {
  EXPECT_EQ(StripeLayout::make(RaidLevel::kNone, 1).fault_tolerance(), 0u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid0, 3).fault_tolerance(), 0u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid1, 1, 2).fault_tolerance(), 2u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid5, 3).fault_tolerance(), 1u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid6, 3).fault_tolerance(), 2u);
}

TEST(StripeLayoutTest, OverheadFactors) {
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kNone, 1).overhead_factor(),
                   1.0);
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kRaid1, 1, 1).overhead_factor(),
                   2.0);
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kRaid5, 4).overhead_factor(),
                   1.25);
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kRaid6, 4).overhead_factor(),
                   1.5);
}

TEST(StripeLayoutTest, InvalidShapesThrow) {
  EXPECT_THROW((void)StripeLayout::make(RaidLevel::kRaid5, 1), std::invalid_argument);
  EXPECT_THROW((void)StripeLayout::make(RaidLevel::kRaid1, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)StripeLayout::make(RaidLevel::kRaid6, 300),
               std::invalid_argument);
}

// --- encode shape ---------------------------------------------------------------

TEST(EncodeTest, ShardsAreEqualLength) {
  const Bytes payload = random_payload(1001, 1);  // deliberately not divisible
  for (auto level : {RaidLevel::kRaid0, RaidLevel::kRaid5, RaidLevel::kRaid6}) {
    const StripeLayout layout = StripeLayout::make(level, 4);
    const EncodedStripe stripe = encode(layout, payload);
    ASSERT_EQ(stripe.shard_count, layout.total_shards());
    EXPECT_EQ(stripe.arena.size(), stripe.shard_count * stripe.shard_size);
    for (std::size_t i = 0; i < stripe.shard_count; ++i) {
      EXPECT_EQ(stripe.shard(i).size(), stripe.shard_size);
    }
    EXPECT_EQ(stripe.original_size, payload.size());
    EXPECT_GE(stripe.shard_size * layout.data_shards, payload.size());
  }
}

TEST(EncodeTest, Raid1ShardsAreFullCopies) {
  const Bytes payload = random_payload(100, 2);
  const EncodedStripe stripe =
      encode(StripeLayout::make(RaidLevel::kRaid1, 1, 2), payload);
  ASSERT_EQ(stripe.shard_count, 3u);
  for (std::size_t i = 0; i < stripe.shard_count; ++i) {
    EXPECT_TRUE(equal(stripe.shard(i), payload));
  }
}

TEST(EncodeTest, Raid5ParityIsXorOfData) {
  const Bytes payload = random_payload(64, 3);
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 4);
  const EncodedStripe stripe = encode(layout, payload);
  Bytes x(stripe.shard_size, 0);
  for (std::size_t i = 0; i < 4; ++i) xor_into(x, stripe.shard(i));
  EXPECT_TRUE(equal(x, stripe.shard(4)));
}

TEST(EncodeTest, EmptyPayloadProducesEmptyShards) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 3);
  const EncodedStripe stripe = encode(layout, {});
  EXPECT_EQ(stripe.original_size, 0u);
  Result<Bytes> r = decode(layout, to_optional(stripe), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

// --- parameterized erasure sweeps -----------------------------------------------
//
// For each (level, k, payload size) we hit every single- and double-erasure
// pattern and check exact recovery within tolerance / clean failure beyond.

struct ErasureCase {
  RaidLevel level;
  std::size_t k;          // data shards (or replicas-1 for raid1)
  std::size_t payload;    // bytes
};

class ErasureSweep : public ::testing::TestWithParam<ErasureCase> {};

TEST_P(ErasureSweep, RecoversWithinToleranceFailsBeyond) {
  const auto& p = GetParam();
  const StripeLayout layout =
      p.level == RaidLevel::kRaid1
          ? StripeLayout::make(p.level, 1, p.k)
          : StripeLayout::make(p.level, p.k);
  const Bytes payload = random_payload(p.payload, 0xE1A5 + p.payload);
  const EncodedStripe stripe = encode(layout, payload);
  const std::size_t n = layout.total_shards();
  const std::size_t tolerance = layout.fault_tolerance();

  // No erasures: always decodes.
  {
    Result<Bytes> r = decode(layout, to_optional(stripe),
                             stripe.original_size);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(equal(r.value(), payload));
  }
  // Every single erasure.
  for (std::size_t e = 0; e < n; ++e) {
    auto shards = to_optional(stripe);
    shards[e].reset();
    Result<Bytes> r = decode(layout, shards, stripe.original_size);
    if (tolerance >= 1) {
      ASSERT_TRUE(r.ok()) << "erasure " << e;
      EXPECT_TRUE(equal(r.value(), payload)) << "erasure " << e;
    } else if (layout.level == RaidLevel::kRaid0 ||
               layout.level == RaidLevel::kNone) {
      EXPECT_FALSE(r.ok()) << "erasure " << e;
    }
  }
  // Every double erasure.
  for (std::size_t e1 = 0; e1 < n; ++e1) {
    for (std::size_t e2 = e1 + 1; e2 < n; ++e2) {
      auto shards = to_optional(stripe);
      shards[e1].reset();
      shards[e2].reset();
      Result<Bytes> r = decode(layout, shards, stripe.original_size);
      if (tolerance >= 2) {
        ASSERT_TRUE(r.ok()) << "erasures " << e1 << "," << e2;
        EXPECT_TRUE(equal(r.value(), payload))
            << "erasures " << e1 << "," << e2;
      } else if (layout.level == RaidLevel::kRaid5) {
        EXPECT_FALSE(r.ok()) << "erasures " << e1 << "," << e2;
      }
    }
  }
  // One more erasure than tolerated: must fail cleanly (never mis-decode).
  if (tolerance + 1 <= n) {
    auto shards = to_optional(stripe);
    for (std::size_t e = 0; e <= tolerance; ++e) shards[e].reset();
    Result<Bytes> r = decode(layout, shards, stripe.original_size);
    if (layout.level != RaidLevel::kRaid1 || tolerance + 1 == n) {
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, ErasureSweep,
    ::testing::Values(
        ErasureCase{RaidLevel::kNone, 1, 100},
        ErasureCase{RaidLevel::kRaid0, 3, 1000},
        ErasureCase{RaidLevel::kRaid0, 5, 17},
        ErasureCase{RaidLevel::kRaid1, 1, 256},
        ErasureCase{RaidLevel::kRaid1, 2, 999},
        ErasureCase{RaidLevel::kRaid5, 2, 64},
        ErasureCase{RaidLevel::kRaid5, 3, 1000},
        ErasureCase{RaidLevel::kRaid5, 4, 1},
        ErasureCase{RaidLevel::kRaid5, 7, 4096},
        ErasureCase{RaidLevel::kRaid6, 2, 100},
        ErasureCase{RaidLevel::kRaid6, 3, 1023},
        ErasureCase{RaidLevel::kRaid6, 4, 4097},
        ErasureCase{RaidLevel::kRaid6, 8, 257},
        ErasureCase{RaidLevel::kRaid6, 16, 1024}),
    [](const ::testing::TestParamInfo<ErasureCase>& info) {
      return std::string(raid_level_name(info.param.level)) + "_k" +
             std::to_string(info.param.k) + "_n" +
             std::to_string(info.param.payload);
    });

// --- reconstruct_shard -----------------------------------------------------------

TEST(ReconstructTest, RebuildsEveryShardOfRaid6) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, 5);
  const Bytes payload = random_payload(2048, 10);
  const EncodedStripe stripe = encode(layout, payload);
  for (std::size_t target = 0; target < layout.total_shards(); ++target) {
    auto shards = to_optional(stripe);
    shards[target].reset();
    Result<Bytes> r = reconstruct_shard(layout, shards, target);
    ASSERT_TRUE(r.ok()) << "target " << target;
    EXPECT_TRUE(equal(r.value(), stripe.shard(target))) << "target " << target;
  }
}

TEST(ReconstructTest, RebuildsUnderDoubleErasureRaid6) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, 4);
  const Bytes payload = random_payload(777, 11);
  const EncodedStripe stripe = encode(layout, payload);
  auto shards = to_optional(stripe);
  shards[1].reset();
  shards[3].reset();
  Result<Bytes> r = reconstruct_shard(layout, shards, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), stripe.shard(1)));
}

TEST(ReconstructTest, FailsWhenNothingSurvives) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 2);
  std::vector<std::optional<Bytes>> shards(3);
  EXPECT_FALSE(reconstruct_shard(layout, shards, 0).ok());
}

TEST(ReconstructTest, Raid1RebuildsReplica) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid1, 1, 2);
  const Bytes payload = random_payload(300, 12);
  const EncodedStripe stripe = encode(layout, payload);
  auto shards = to_optional(stripe);
  shards[0].reset();
  Result<Bytes> r = reconstruct_shard(layout, shards, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), payload));
}

// --- dispatch arms -----------------------------------------------------------------
//
// The whole erasure pipeline must be bit-identical under the forced-scalar
// arm and the widest SIMD arm the host has: same stripes out of encode, same
// payloads out of decode, same rebuilt shards.

TEST(DispatchArmTest, EncodeDecodeReconstructIdenticalAcrossArms) {
  const kern::Arm best = cpu::preferred_level();
  const std::vector<std::pair<RaidLevel, std::size_t>> shapes = {
      {RaidLevel::kRaid5, 3}, {RaidLevel::kRaid6, 4}, {RaidLevel::kRaid6, 9}};
  for (const auto& [level, k] : shapes) {
    const StripeLayout layout = StripeLayout::make(level, k);
    for (std::size_t n : {1ul, 63ul, 1000ul, 4097ul}) {
      const Bytes payload = random_payload(n, 0xA7 + n + k);

      EncodedStripe scalar_stripe;
      Bytes scalar_decoded;
      Bytes scalar_rebuilt;
      {
        ScopedArm arm(kern::Arm::kScalar);
        scalar_stripe = encode(layout, payload);
        auto shards = to_optional(scalar_stripe);
        shards[0].reset();
        Result<Bytes> d = decode(layout, shards, payload.size());
        ASSERT_TRUE(d.ok());
        scalar_decoded = std::move(d).value();
        Result<Bytes> r = reconstruct_shard(layout, shards, 0);
        ASSERT_TRUE(r.ok());
        scalar_rebuilt = std::move(r).value();
      }
      {
        ScopedArm arm(best);
        const EncodedStripe simd_stripe = encode(layout, payload);
        EXPECT_TRUE(equal(simd_stripe.arena, scalar_stripe.arena))
            << raid_level_name(level) << " k=" << k << " n=" << n;
        auto shards = to_optional(simd_stripe);
        shards[0].reset();
        Result<Bytes> d = decode(layout, shards, payload.size());
        ASSERT_TRUE(d.ok());
        EXPECT_TRUE(equal(d.value(), scalar_decoded));
        EXPECT_TRUE(equal(d.value(), payload));
        Result<Bytes> r = reconstruct_shard(layout, shards, 0);
        ASSERT_TRUE(r.ok());
        EXPECT_TRUE(equal(r.value(), scalar_rebuilt));
      }
    }
  }
}

// --- targeted rebuild work accounting ----------------------------------------------
//
// reconstruct_shard must recompute only the asked-for shard: the old path
// (full decode + full re-encode) always paid the Q sweep's mul_add work even
// when rebuilding P or a data shard under RAID-5 semantics. The kernel work
// counters make that observable: rebuilding P or a data shard via P must do
// zero multiply bytes, and every rebuild stays within O(k * shard) bytes.

TEST(ReconstructWorkTest, ParityPRebuildDoesNoFieldMultiplies) {
  const std::size_t k = 8;
  const std::size_t payload_size = 8 * 4096;
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, k);
  const EncodedStripe stripe = encode(layout, random_payload(payload_size, 21));
  auto shards = to_optional(stripe);
  shards[k].reset();  // P erased
  kern::reset_work_stats();
  Result<Bytes> r = reconstruct_shard(layout, shards, k);
  const kern::WorkStats w = kern::work_stats();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), stripe.shard(k)));
  EXPECT_EQ(w.mul_bytes, 0u) << "P rebuild re-encoded Q";
  EXPECT_EQ(w.xor_bytes, k * stripe.shard_size);
}

TEST(ReconstructWorkTest, DataRebuildViaPDoesNoFieldMultiplies) {
  const std::size_t k = 8;
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, k);
  const EncodedStripe stripe = encode(layout, random_payload(8 * 4096, 22));
  auto shards = to_optional(stripe);
  shards[2].reset();
  kern::reset_work_stats();
  Result<Bytes> r = reconstruct_shard(layout, shards, 2);
  const kern::WorkStats w = kern::work_stats();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), stripe.shard(2)));
  EXPECT_EQ(w.mul_bytes, 0u) << "data rebuild re-encoded Q";
  // P is copied, then the k-1 surviving data shards are XORed into it.
  EXPECT_EQ(w.xor_bytes, (k - 1) * stripe.shard_size);
}

TEST(ReconstructWorkTest, ParityQRebuildIsOneMulAddSweep) {
  const std::size_t k = 8;
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, k);
  const EncodedStripe stripe = encode(layout, random_payload(8 * 4096, 23));
  auto shards = to_optional(stripe);
  shards[k + 1].reset();  // Q erased
  kern::reset_work_stats();
  Result<Bytes> r = reconstruct_shard(layout, shards, k + 1);
  const kern::WorkStats w = kern::work_stats();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), stripe.shard(k + 1)));
  // The g^0 = 1 term routes through the XOR path; the rest are multiplies.
  // Old path additionally paid the k-shard P XOR sweep.
  EXPECT_EQ(w.mul_bytes, (k - 1) * stripe.shard_size);
  EXPECT_LE(w.xor_bytes, stripe.shard_size);
}

TEST(ReconstructWorkTest, PresentTargetIsPureCopy) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, 4);
  const EncodedStripe stripe = encode(layout, random_payload(4096, 24));
  auto shards = to_optional(stripe);
  shards[1].reset();  // unrelated erasure
  kern::reset_work_stats();
  Result<Bytes> r = reconstruct_shard(layout, shards, 3);
  const kern::WorkStats w = kern::work_stats();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), stripe.shard(3)));
  EXPECT_EQ(w.mul_bytes + w.xor_bytes, 0u);
}

// --- corrupt input ----------------------------------------------------------------

TEST(DecodeTest, ShortShardIsAnErrorNotGarbage) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, 4);
  const EncodedStripe stripe = encode(layout, random_payload(4096, 25));
  auto shards = to_optional(stripe);
  shards[2]->pop_back();  // provider returned a truncated shard
  Result<Bytes> r = decode(layout, shards, stripe.original_size);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  EXPECT_FALSE(reconstruct_shard(layout, shards, 5).ok());
}

// --- arity misuse -----------------------------------------------------------------

TEST(DecodeTest, WrongShardArityThrows) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 3);
  std::vector<std::optional<Bytes>> shards(2);
  EXPECT_THROW((void)decode(layout, shards, 10), std::invalid_argument);
}

}  // namespace
}  // namespace cshield::raid

// Tests for the RAID/erasure-coding layer. The heart is a parameterized
// sweep proving decode() recovers the payload for EVERY erasure pattern each
// level claims to tolerate, and refuses (rather than mis-decodes) beyond.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "raid/raid.hpp"
#include "util/random.hpp"

namespace cshield::raid {
namespace {

Bytes random_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::vector<std::optional<Bytes>> to_optional(
    const std::vector<Bytes>& shards) {
  return {shards.begin(), shards.end()};
}

// --- StripeLayout -------------------------------------------------------------

TEST(StripeLayoutTest, MakeDerivesParityCounts) {
  EXPECT_EQ(StripeLayout::make(RaidLevel::kNone, 1).total_shards(), 1u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid0, 4).total_shards(), 4u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid1, 1, 2).total_shards(), 3u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid5, 4).total_shards(), 5u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid6, 4).total_shards(), 6u);
}

TEST(StripeLayoutTest, FaultToleranceByLevel) {
  EXPECT_EQ(StripeLayout::make(RaidLevel::kNone, 1).fault_tolerance(), 0u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid0, 3).fault_tolerance(), 0u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid1, 1, 2).fault_tolerance(), 2u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid5, 3).fault_tolerance(), 1u);
  EXPECT_EQ(StripeLayout::make(RaidLevel::kRaid6, 3).fault_tolerance(), 2u);
}

TEST(StripeLayoutTest, OverheadFactors) {
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kNone, 1).overhead_factor(),
                   1.0);
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kRaid1, 1, 1).overhead_factor(),
                   2.0);
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kRaid5, 4).overhead_factor(),
                   1.25);
  EXPECT_DOUBLE_EQ(StripeLayout::make(RaidLevel::kRaid6, 4).overhead_factor(),
                   1.5);
}

TEST(StripeLayoutTest, InvalidShapesThrow) {
  EXPECT_THROW((void)StripeLayout::make(RaidLevel::kRaid5, 1), std::invalid_argument);
  EXPECT_THROW((void)StripeLayout::make(RaidLevel::kRaid1, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)StripeLayout::make(RaidLevel::kRaid6, 300),
               std::invalid_argument);
}

// --- encode shape ---------------------------------------------------------------

TEST(EncodeTest, ShardsAreEqualLength) {
  const Bytes payload = random_payload(1001, 1);  // deliberately not divisible
  for (auto level : {RaidLevel::kRaid0, RaidLevel::kRaid5, RaidLevel::kRaid6}) {
    const StripeLayout layout = StripeLayout::make(level, 4);
    const EncodedStripe stripe = encode(layout, payload);
    ASSERT_EQ(stripe.shards.size(), layout.total_shards());
    for (const auto& s : stripe.shards) {
      EXPECT_EQ(s.size(), stripe.shards[0].size());
    }
    EXPECT_EQ(stripe.original_size, payload.size());
    EXPECT_GE(stripe.shards[0].size() * layout.data_shards, payload.size());
  }
}

TEST(EncodeTest, Raid1ShardsAreFullCopies) {
  const Bytes payload = random_payload(100, 2);
  const EncodedStripe stripe =
      encode(StripeLayout::make(RaidLevel::kRaid1, 1, 2), payload);
  ASSERT_EQ(stripe.shards.size(), 3u);
  for (const auto& s : stripe.shards) EXPECT_TRUE(equal(s, payload));
}

TEST(EncodeTest, Raid5ParityIsXorOfData) {
  const Bytes payload = random_payload(64, 3);
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 4);
  const EncodedStripe stripe = encode(layout, payload);
  Bytes x(stripe.shards[0].size(), 0);
  for (std::size_t i = 0; i < 4; ++i) xor_into(x, stripe.shards[i]);
  EXPECT_TRUE(equal(x, stripe.shards[4]));
}

TEST(EncodeTest, EmptyPayloadProducesEmptyShards) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 3);
  const EncodedStripe stripe = encode(layout, {});
  EXPECT_EQ(stripe.original_size, 0u);
  Result<Bytes> r = decode(layout, to_optional(stripe.shards), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

// --- parameterized erasure sweeps -----------------------------------------------
//
// For each (level, k, payload size) we hit every single- and double-erasure
// pattern and check exact recovery within tolerance / clean failure beyond.

struct ErasureCase {
  RaidLevel level;
  std::size_t k;          // data shards (or replicas-1 for raid1)
  std::size_t payload;    // bytes
};

class ErasureSweep : public ::testing::TestWithParam<ErasureCase> {};

TEST_P(ErasureSweep, RecoversWithinToleranceFailsBeyond) {
  const auto& p = GetParam();
  const StripeLayout layout =
      p.level == RaidLevel::kRaid1
          ? StripeLayout::make(p.level, 1, p.k)
          : StripeLayout::make(p.level, p.k);
  const Bytes payload = random_payload(p.payload, 0xE1A5 + p.payload);
  const EncodedStripe stripe = encode(layout, payload);
  const std::size_t n = layout.total_shards();
  const std::size_t tolerance = layout.fault_tolerance();

  // No erasures: always decodes.
  {
    Result<Bytes> r = decode(layout, to_optional(stripe.shards),
                             stripe.original_size);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(equal(r.value(), payload));
  }
  // Every single erasure.
  for (std::size_t e = 0; e < n; ++e) {
    auto shards = to_optional(stripe.shards);
    shards[e].reset();
    Result<Bytes> r = decode(layout, shards, stripe.original_size);
    if (tolerance >= 1) {
      ASSERT_TRUE(r.ok()) << "erasure " << e;
      EXPECT_TRUE(equal(r.value(), payload)) << "erasure " << e;
    } else if (layout.level == RaidLevel::kRaid0 ||
               layout.level == RaidLevel::kNone) {
      EXPECT_FALSE(r.ok()) << "erasure " << e;
    }
  }
  // Every double erasure.
  for (std::size_t e1 = 0; e1 < n; ++e1) {
    for (std::size_t e2 = e1 + 1; e2 < n; ++e2) {
      auto shards = to_optional(stripe.shards);
      shards[e1].reset();
      shards[e2].reset();
      Result<Bytes> r = decode(layout, shards, stripe.original_size);
      if (tolerance >= 2) {
        ASSERT_TRUE(r.ok()) << "erasures " << e1 << "," << e2;
        EXPECT_TRUE(equal(r.value(), payload))
            << "erasures " << e1 << "," << e2;
      } else if (layout.level == RaidLevel::kRaid5) {
        EXPECT_FALSE(r.ok()) << "erasures " << e1 << "," << e2;
      }
    }
  }
  // One more erasure than tolerated: must fail cleanly (never mis-decode).
  if (tolerance + 1 <= n) {
    auto shards = to_optional(stripe.shards);
    for (std::size_t e = 0; e <= tolerance; ++e) shards[e].reset();
    Result<Bytes> r = decode(layout, shards, stripe.original_size);
    if (layout.level != RaidLevel::kRaid1 || tolerance + 1 == n) {
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, ErasureSweep,
    ::testing::Values(
        ErasureCase{RaidLevel::kNone, 1, 100},
        ErasureCase{RaidLevel::kRaid0, 3, 1000},
        ErasureCase{RaidLevel::kRaid0, 5, 17},
        ErasureCase{RaidLevel::kRaid1, 1, 256},
        ErasureCase{RaidLevel::kRaid1, 2, 999},
        ErasureCase{RaidLevel::kRaid5, 2, 64},
        ErasureCase{RaidLevel::kRaid5, 3, 1000},
        ErasureCase{RaidLevel::kRaid5, 4, 1},
        ErasureCase{RaidLevel::kRaid5, 7, 4096},
        ErasureCase{RaidLevel::kRaid6, 2, 100},
        ErasureCase{RaidLevel::kRaid6, 3, 1023},
        ErasureCase{RaidLevel::kRaid6, 4, 4097},
        ErasureCase{RaidLevel::kRaid6, 8, 257},
        ErasureCase{RaidLevel::kRaid6, 16, 1024}),
    [](const ::testing::TestParamInfo<ErasureCase>& info) {
      return std::string(raid_level_name(info.param.level)) + "_k" +
             std::to_string(info.param.k) + "_n" +
             std::to_string(info.param.payload);
    });

// --- reconstruct_shard -----------------------------------------------------------

TEST(ReconstructTest, RebuildsEveryShardOfRaid6) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, 5);
  const Bytes payload = random_payload(2048, 10);
  const EncodedStripe stripe = encode(layout, payload);
  for (std::size_t target = 0; target < layout.total_shards(); ++target) {
    auto shards = to_optional(stripe.shards);
    shards[target].reset();
    Result<Bytes> r = reconstruct_shard(layout, shards, target);
    ASSERT_TRUE(r.ok()) << "target " << target;
    EXPECT_TRUE(equal(r.value(), stripe.shards[target])) << "target " << target;
  }
}

TEST(ReconstructTest, RebuildsUnderDoubleErasureRaid6) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid6, 4);
  const Bytes payload = random_payload(777, 11);
  const EncodedStripe stripe = encode(layout, payload);
  auto shards = to_optional(stripe.shards);
  shards[1].reset();
  shards[3].reset();
  Result<Bytes> r = reconstruct_shard(layout, shards, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), stripe.shards[1]));
}

TEST(ReconstructTest, FailsWhenNothingSurvives) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 2);
  std::vector<std::optional<Bytes>> shards(3);
  EXPECT_FALSE(reconstruct_shard(layout, shards, 0).ok());
}

TEST(ReconstructTest, Raid1RebuildsReplica) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid1, 1, 2);
  const Bytes payload = random_payload(300, 12);
  const EncodedStripe stripe = encode(layout, payload);
  auto shards = to_optional(stripe.shards);
  shards[0].reset();
  Result<Bytes> r = reconstruct_shard(layout, shards, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal(r.value(), payload));
}

// --- arity misuse -----------------------------------------------------------------

TEST(DecodeTest, WrongShardArityThrows) {
  const StripeLayout layout = StripeLayout::make(RaidLevel::kRaid5, 3);
  std::vector<std::optional<Bytes>> shards(2);
  EXPECT_THROW((void)decode(layout, shards, 10), std::invalid_argument);
}

}  // namespace
}  // namespace cshield::raid

// Tests for the crypto substrate: GF(2^8) field axioms, SHA-256 FIPS
// vectors, AES-128 FIPS-197 vectors and CTR-mode properties.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "crypto/aes.hpp"
#include "crypto/gf256.hpp"
#include "crypto/sha256.hpp"
#include "util/random.hpp"

namespace cshield {
namespace {

// --- GF(2^8) -----------------------------------------------------------------

TEST(Gf256Test, TablesMatchSlowMultiply) {
  for (unsigned a = 0; a < 256; a += 7) {
    for (unsigned b = 0; b < 256; b += 5) {
      EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                gf256::mul_slow(static_cast<std::uint8_t>(a),
                                static_cast<std::uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256Test, MultiplicativeIdentity) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1),
              static_cast<std::uint8_t>(a));
  }
}

TEST(Gf256Test, ZeroAnnihilates) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256Test, InverseProperty) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
  }
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  // 0x02 must generate all 255 nonzero elements under poly 0x11D.
  std::set<std::uint8_t> seen;
  for (unsigned i = 0; i < 255; ++i) seen.insert(gf256::exp(i));
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(Gf256Test, LogExpInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(gf256::exp(gf256::log(static_cast<std::uint8_t>(a))),
              static_cast<std::uint8_t>(a));
  }
}

TEST(Gf256Test, DistributiveLaw) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(rng.below(256));
    const auto c = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256Test, MulAddKernelMatchesScalar) {
  Rng rng(3);
  Bytes src(257), dst(257), expected(257);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(rng.below(256));
    dst[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  for (unsigned coeff : {0u, 1u, 2u, 77u, 255u}) {
    Bytes d2 = dst;
    for (std::size_t i = 0; i < src.size(); ++i) {
      expected[i] = static_cast<std::uint8_t>(
          dst[i] ^ gf256::mul(static_cast<std::uint8_t>(coeff), src[i]));
    }
    gf256::mul_add(static_cast<std::uint8_t>(coeff), src.data(), d2.data(),
                   d2.size());
    EXPECT_TRUE(equal(d2, expected)) << "coeff=" << coeff;
  }
}

// --- SHA-256 -------------------------------------------------------------------

TEST(Sha256Test, EmptyStringVector) {
  EXPECT_EQ(crypto::digest_hex(crypto::sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(crypto::digest_hex(crypto::sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  EXPECT_EQ(crypto::digest_hex(crypto::sha256(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAVector) {
  crypto::Sha256 h;
  const Bytes block(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(block);
  EXPECT_EQ(crypto::digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  crypto::Sha256 h;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    h.update(BytesView(data.data() + i, std::min<std::size_t>(7, data.size() - i)));
  }
  EXPECT_EQ(h.finish(), crypto::sha256(data));
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(crypto::sha256(to_bytes("chunk-a")),
            crypto::sha256(to_bytes("chunk-b")));
}

TEST(Sha256Test, HasherResetsAfterFinish) {
  crypto::Sha256 h;
  h.update(to_bytes("abc"));
  (void)h.finish();
  h.update(to_bytes("abc"));
  EXPECT_EQ(crypto::digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --- AES-128 ----------------------------------------------------------------------

crypto::AesKey fips_key() {
  return {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
}

TEST(AesTest, Fips197EncryptVector) {
  crypto::Aes128 aes(fips_key());
  crypto::AesBlock block = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                            0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  aes.encrypt_block(block);
  const crypto::AesBlock expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                     0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                     0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(block, expected);
}

TEST(AesTest, Fips197DecryptInverts) {
  crypto::Aes128 aes(fips_key());
  crypto::AesBlock block = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                            0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  aes.decrypt_block(block);
  const crypto::AesBlock expected = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                     0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                     0xcc, 0xdd, 0xee, 0xff};
  EXPECT_EQ(block, expected);
}

TEST(AesTest, Sp80038aEcbVectors) {
  // SP 800-38A F.1.1 ECB-AES128 (block encrypts under the standard key).
  const crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  crypto::Aes128 aes(key);
  crypto::AesBlock block = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
                            0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};
  aes.encrypt_block(block);
  const crypto::AesBlock expected = {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a,
                                     0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3,
                                     0x24, 0x66, 0xef, 0x97};
  EXPECT_EQ(block, expected);
}

TEST(AesTest, EncryptDecryptRandomBlocks) {
  Rng rng(4);
  crypto::AesKey key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
  crypto::Aes128 aes(key);
  for (int i = 0; i < 100; ++i) {
    crypto::AesBlock block{};
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.below(256));
    const crypto::AesBlock original = block;
    aes.encrypt_block(block);
    EXPECT_NE(block, original);
    aes.decrypt_block(block);
    EXPECT_EQ(block, original);
  }
}

TEST(AesCtrTest, RoundTripArbitraryLengths) {
  Rng rng(5);
  crypto::AesKey key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    const Bytes ct = crypto::aes128_ctr(key, 0xABCD, data);
    EXPECT_EQ(ct.size(), data.size());
    const Bytes pt = crypto::aes128_ctr(key, 0xABCD, ct);
    EXPECT_TRUE(equal(pt, data)) << "len=" << len;
  }
}

TEST(AesCtrTest, FirstBlockMatchesManualKeystream) {
  const crypto::AesKey key = fips_key();
  const std::uint64_t nonce = 0x0123456789ABCDEFULL;
  // Keystream block 0 = AES-Enc(key, nonce || 0).
  crypto::AesBlock counter{};
  for (int i = 0; i < 8; ++i) {
    counter[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  crypto::Aes128 aes(key);
  crypto::AesBlock keystream = counter;
  aes.encrypt_block(keystream);
  const Bytes zeros(16, 0);
  const Bytes ct = crypto::aes128_ctr(key, nonce, zeros);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ct[static_cast<std::size_t>(i)],
              keystream[static_cast<std::size_t>(i)]);
  }
}

TEST(AesCtrTest, DifferentNoncesProduceDifferentCiphertext) {
  const crypto::AesKey key = fips_key();
  const Bytes data(64, 0x42);
  EXPECT_FALSE(equal(crypto::aes128_ctr(key, 1, data),
                     crypto::aes128_ctr(key, 2, data)));
}

TEST(AesCtrTest, CiphertextLooksUniform) {
  // Weak sanity check: byte histogram of a long zero-plaintext CTR stream
  // should not be wildly skewed.
  const crypto::AesKey key = fips_key();
  const Bytes zeros(1 << 16, 0);
  const Bytes ct = crypto::aes128_ctr(key, 7, zeros);
  std::array<int, 256> hist{};
  for (auto b : ct) ++hist[b];
  const double expected = static_cast<double>(ct.size()) / 256.0;
  for (int h : hist) {
    EXPECT_GT(h, expected * 0.5);
    EXPECT_LT(h, expected * 1.5);
  }
}

}  // namespace
}  // namespace cshield

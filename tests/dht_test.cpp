// Tests for the CHORD-style consistent-hash ring (client-side distributor,
// SIV-C): determinism across clients, lookup monotonicity under churn, and
// load balance with virtual nodes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dht/ring.hpp"

namespace cshield::dht {
namespace {

HashRing ring_of(std::initializer_list<const char*> names,
                 std::size_t vnodes = 64) {
  HashRing ring(vnodes);
  ProviderIndex idx = 0;
  for (const char* n : names) ring.add_provider(idx++, n);
  return ring;
}

TEST(HashRingTest, EmptyRingRejectsLookup) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.lookup(1), std::invalid_argument);
}

TEST(HashRingTest, SingleProviderOwnsEverything) {
  HashRing ring = ring_of({"Solo"});
  for (std::uint64_t k = 0; k < 1000; k += 13) {
    EXPECT_EQ(ring.lookup(k * 0x9E3779B97F4A7C15ULL), 0u);
  }
}

TEST(HashRingTest, DeterministicAcrossIndependentBuilds) {
  // Two clients building the ring from the same downloadable provider list
  // must agree on every mapping -- the property SIV-C relies on.
  HashRing a = ring_of({"Adobe", "AWS", "Google", "Microsoft"});
  HashRing b = ring_of({"Adobe", "AWS", "Google", "Microsoft"});
  for (std::uint64_t serial = 0; serial < 500; ++serial) {
    const auto key = HashRing::chunk_key("shared_file.dat", serial);
    EXPECT_EQ(a.lookup(key), b.lookup(key));
  }
}

TEST(HashRingTest, LookupManyReturnsDistinctProviders) {
  HashRing ring = ring_of({"A", "B", "C", "D", "E"});
  for (std::uint64_t serial = 0; serial < 200; ++serial) {
    const auto replicas =
        ring.lookup_many(HashRing::chunk_key("f", serial), 3);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<ProviderIndex> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(HashRingTest, LookupManyCapsAtProviderCount) {
  HashRing ring = ring_of({"A", "B"});
  EXPECT_EQ(ring.lookup_many(123, 10).size(), 2u);
}

TEST(HashRingTest, FirstOfLookupManyIsLookup) {
  HashRing ring = ring_of({"A", "B", "C", "D"});
  for (std::uint64_t k = 1; k < 100; ++k) {
    const auto key = HashRing::chunk_key("g", k);
    EXPECT_EQ(ring.lookup_many(key, 2).front(), ring.lookup(key));
  }
}

TEST(HashRingTest, RemovalOnlyMovesKeysOfRemovedProvider) {
  HashRing ring = ring_of({"A", "B", "C", "D"});
  std::map<std::uint64_t, ProviderIndex> before;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    const auto key = HashRing::chunk_key("h", s);
    before[key] = ring.lookup(key);
  }
  ring.remove_provider(2);  // "C" leaves
  for (const auto& [key, owner] : before) {
    const ProviderIndex now = ring.lookup(key);
    if (owner != 2) {
      EXPECT_EQ(now, owner) << "stable key moved";
    } else {
      EXPECT_NE(now, 2u);
    }
  }
}

TEST(HashRingTest, OwnershipIsRoughlyBalanced) {
  HashRing ring = ring_of({"A", "B", "C", "D", "E"}, 128);
  const auto share = ring.ownership();
  ASSERT_EQ(share.size(), 5u);
  double total = 0.0;
  for (const auto& [p, frac] : share) {
    EXPECT_GT(frac, 0.08);  // ideal 0.20; 128 vnodes keep it within ~2x
    EXPECT_LT(frac, 0.40);
    total += frac;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HashRingTest, ChunkKeySeparatesFilesAndSerials) {
  EXPECT_NE(HashRing::chunk_key("a", 0), HashRing::chunk_key("a", 1));
  EXPECT_NE(HashRing::chunk_key("a", 0), HashRing::chunk_key("b", 0));
}

TEST(HashRingTest, JoinStealsAtMostFairShareWithSlack) {
  // The property the topology migrator's <=35% gate rests on: when a
  // provider joins an 8-node ring, every key that changes owner moves TO
  // the joiner (no unrelated shuffling), and the stolen fraction is the
  // newcomer's fair share (1/9) within vnode-variance slack -- nowhere
  // near the ~100% a naive rehash of `key % n` would move.
  HashRing ring = ring_of({"P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7"},
                          128);
  constexpr std::uint64_t kKeys = 4000;
  std::map<std::uint64_t, ProviderIndex> before;
  for (std::uint64_t s = 0; s < kKeys; ++s) {
    const auto key = HashRing::chunk_key("fleet/file", s);
    before[key] = ring.lookup(key);
  }

  constexpr ProviderIndex kJoiner = 8;
  ring.add_provider(kJoiner, "P8");

  std::uint64_t stolen = 0;
  for (const auto& [key, owner] : before) {
    const ProviderIndex now = ring.lookup(key);
    if (now != owner) {
      EXPECT_EQ(now, kJoiner) << "join shuffled a key between old members";
      ++stolen;
    }
  }
  const double fair = 1.0 / 9.0;
  const double fraction = static_cast<double>(stolen) / kKeys;
  EXPECT_GT(fraction, 0.0);  // the joiner does take load
  EXPECT_LT(fraction, 2.0 * fair)
      << "joiner stole " << fraction << " of keys; fair share is " << fair;
  // And the ring agrees about the steady-state share it now owns.
  const auto share = ring.ownership();
  ASSERT_TRUE(share.count(kJoiner));
  EXPECT_LT(share.at(kJoiner), 2.0 * fair);
}

TEST(HashRingTest, NodeCountTracksVirtualNodes) {
  HashRing ring(32);
  ring.add_provider(0, "X");
  ring.add_provider(1, "Y");
  EXPECT_EQ(ring.node_count(), 64u);
  ring.remove_provider(0);
  EXPECT_EQ(ring.node_count(), 32u);
}

}  // namespace
}  // namespace cshield::dht

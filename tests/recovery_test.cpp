// Crash-recovery tests: the write-ahead journal's wire format, torn-tail
// tolerance, atomic checkpointing, and -- the centerpiece -- a crash
// injection sweep that kills a scripted workload at every journal-record
// boundary (and at torn-byte offsets inside each record), then proves
// recovery converges: every committed file reads back byte-identical, no
// orphan shards survive reconciliation, and a second recovery pass is a
// no-op. Plus the background scrubber: every injected silent corruption is
// detected and repaired before any client read can observe it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/distributor.hpp"
#include "core/journal.hpp"
#include "core/metadata_io.hpp"
#include "core/scrubber.hpp"
#include "storage/provider_registry.hpp"
#include "util/hash.hpp"
#include "util/wire.hpp"

namespace cshield {
namespace {

namespace fs = std::filesystem;
using core::Journal;
using core::JournalChunk;
using core::JournalOp;
using core::JournalRecord;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("cshield_recovery_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

Bytes read_disk(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  Bytes data(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

void write_disk(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

// 12 providers so every privacy tier keeps enough eligible providers for
// repair to find replacement targets outside a degraded 4-shard stripe.
constexpr std::size_t kProviders = 12;

core::DistributorConfig base_config(std::uint64_t seed) {
  core::DistributorConfig config;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.05;
  config.worker_threads = 4;
  config.seed = seed;
  return config;
}

// --- journal wire format ----------------------------------------------------

JournalRecord sample_commit_record() {
  JournalRecord rec;
  rec.op = JournalOp::kCommitPut;
  rec.client = "alice";
  rec.filename = "notes.txt";
  core::ChunkEntry entry;
  entry.privacy_level = PrivacyLevel::kModerate;
  entry.layout = raid::StripeLayout::make(raid::RaidLevel::kRaid5, 3);
  entry.stripe = {{0, 11}, {1, 22}, {2, 33}, {3, 44}};
  entry.misleading = {4, 9, 200};
  entry.padded_size = 4099;
  entry.shard_digests.resize(4);
  entry.shard_digests[1][0] = 0xAB;
  rec.chunks.push_back(JournalChunk{7, 3, entry});
  return rec;
}

TEST(JournalCodecTest, RecordRoundTripsEveryOp) {
  for (JournalOp op :
       {JournalOp::kRegisterProvider, JournalOp::kRegisterClient,
        JournalOp::kAddPassword, JournalOp::kBeginPut, JournalOp::kCommitPut,
        JournalOp::kAbortPut, JournalOp::kUpdateChunk, JournalOp::kRemoveChunk,
        JournalOp::kRemoveFile}) {
    JournalRecord rec = sample_commit_record();
    rec.op = op;
    rec.level = 2;
    rec.cost = 1;
    rec.provider_index = 9;
    if (op == JournalOp::kRemoveChunk || op == JournalOp::kRemoveFile) {
      for (JournalChunk& c : rec.chunks) c.entry = core::ChunkEntry{};
    }
    const Bytes wire = core::encode_record(rec);
    JournalRecord back;
    ASSERT_TRUE(core::decode_record(wire, back))
        << "op " << static_cast<int>(op);
    EXPECT_EQ(back.op, rec.op);
    EXPECT_EQ(back.client, rec.client);
    // Provider/client registrations carry no filename on the wire.
    if (op != JournalOp::kRegisterProvider &&
        op != JournalOp::kRegisterClient) {
      EXPECT_EQ(back.filename, rec.filename);
    }
    switch (op) {
      case JournalOp::kCommitPut:
      case JournalOp::kUpdateChunk: {
        ASSERT_EQ(back.chunks.size(), rec.chunks.size());
        EXPECT_EQ(back.chunks[0].serial, 7u);
        EXPECT_EQ(back.chunks[0].index, 3u);
        EXPECT_EQ(back.chunks[0].entry.padded_size, 4099u);
        EXPECT_EQ(back.chunks[0].entry.stripe.size(), 4u);
        EXPECT_EQ(back.chunks[0].entry.stripe[2].virtual_id, 33u);
        EXPECT_EQ(back.chunks[0].entry.misleading,
                  (std::vector<std::uint32_t>{4, 9, 200}));
        break;
      }
      case JournalOp::kRemoveChunk:
      case JournalOp::kRemoveFile:
        ASSERT_EQ(back.chunks.size(), rec.chunks.size());
        EXPECT_EQ(back.chunks[0].serial, 7u);
        EXPECT_EQ(back.chunks[0].index, 3u);
        break;
      case JournalOp::kRegisterProvider:
        EXPECT_EQ(back.provider_index, 9u);
        EXPECT_EQ(back.level, 2);
        EXPECT_EQ(back.cost, 1);
        break;
      default:
        break;
    }
  }
}

TEST(JournalCodecTest, DecodeRejectsTruncationAtEveryOffset) {
  const Bytes wire = core::encode_record(sample_commit_record());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    JournalRecord back;
    EXPECT_FALSE(core::decode_record(BytesView(wire.data(), len), back))
        << "accepted a " << len << "-byte prefix of " << wire.size();
  }
}

// --- journal file behavior --------------------------------------------------

JournalRecord begin_record(const std::string& file) {
  JournalRecord rec;
  rec.op = JournalOp::kBeginPut;
  rec.client = "alice";
  rec.filename = file;
  return rec;
}

TEST(JournalFileTest, AppendsSurviveReopen) {
  TempDir dir;
  const fs::path path = dir.path() / "j.wal";
  {
    Result<std::unique_ptr<Journal>> j = Journal::open(path);
    ASSERT_TRUE(j.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(j.value()->append(begin_record("f" + std::to_string(i))).ok());
    }
    EXPECT_EQ(j.value()->record_count(), 5u);
  }
  Result<core::JournalReplay> replay =
      core::replay_journal_image(read_disk(path));
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 5u);
  EXPECT_EQ(replay.value().records[3].filename, "f3");
  Result<std::unique_ptr<Journal>> again = Journal::open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->record_count(), 5u);
}

TEST(JournalFileTest, OpenTruncatesTornTail) {
  TempDir dir;
  const fs::path path = dir.path() / "j.wal";
  {
    Result<std::unique_ptr<Journal>> j = Journal::open(path);
    ASSERT_TRUE(j.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(j.value()->append(begin_record("f" + std::to_string(i))).ok());
    }
  }
  const Bytes full = read_disk(path);
  // Chop the file anywhere inside the last record: the first two records
  // must survive, the torn tail must be cut away on open.
  Result<core::JournalReplay> two_of_three =
      core::replay_journal_image(BytesView(full.data(), full.size() - 1));
  ASSERT_TRUE(two_of_three.ok());
  const std::size_t keep = two_of_three.value().valid_bytes;
  for (std::size_t cut = keep + 1; cut <= full.size() - 1; cut += 3) {
    write_disk(path, BytesView(full.data(), cut));
    Result<std::unique_ptr<Journal>> j = Journal::open(path);
    ASSERT_TRUE(j.ok()) << "cut at " << cut;
    EXPECT_EQ(j.value()->record_count(), 2u) << "cut at " << cut;
    EXPECT_EQ(fs::file_size(path), keep) << "cut at " << cut;
  }
}

TEST(JournalFileTest, OpenRejectsForeignFile) {
  TempDir dir;
  const fs::path path = dir.path() / "not_a_journal.bin";
  const Bytes junk = payload_of(64, 99);
  write_disk(path, junk);
  EXPECT_FALSE(Journal::open(path).ok());
}

TEST(JournalFileTest, SubHeaderFileIsTreatedAsFresh) {
  TempDir dir;
  const fs::path path = dir.path() / "j.wal";
  // A crash while creating a brand-new journal can leave fewer than the 16
  // header bytes. That is not corruption -- nothing was ever committed.
  write_disk(path, Bytes{0xC5, 0xD1});
  Result<std::unique_ptr<Journal>> j = Journal::open(path);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value()->record_count(), 0u);
  ASSERT_TRUE(j.value()->append(begin_record("f")).ok());
  Result<core::JournalReplay> replay =
      core::replay_journal_image(read_disk(path));
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 1u);
}

TEST(JournalFileTest, CheckpointFoldsRecordsAndPersistsOpCount) {
  TempDir dir;
  const fs::path jpath = dir.path() / "j.wal";
  const fs::path cpath = dir.path() / "ckpt.bin";
  Result<std::unique_ptr<Journal>> j = Journal::open(jpath);
  ASSERT_TRUE(j.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(j.value()->append(begin_record("f" + std::to_string(i))).ok());
  }
  const Bytes snapshot = payload_of(1000, 7);
  ASSERT_TRUE(
      j.value()->checkpoint([&] { return snapshot; }, cpath).ok());
  EXPECT_EQ(j.value()->record_count(), 0u);
  EXPECT_EQ(j.value()->last_checkpoint_ops(), 4u);
  EXPECT_TRUE(equal(read_disk(cpath), snapshot));
  ASSERT_TRUE(j.value()->append(begin_record("late")).ok());
  j = Journal::open(jpath);  // reopen: header must carry the fold count
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value()->record_count(), 1u);
  EXPECT_EQ(j.value()->last_checkpoint_ops(), 4u);
}

// --- group commit -----------------------------------------------------------

// The exact on-disk image the per-op journal has always produced: header
// (magic | version | checkpoint ops) followed by one `len | crc | payload`
// frame per record, in append order.
Bytes expected_journal_image(const std::vector<JournalRecord>& recs) {
  Bytes out;
  {
    wire::Writer w(out);
    w.u32(0xC5D17A6EU);  // magic
    w.u32(3);            // version (v3: lifecycle byte + migration records)
    w.u64(0);            // checkpoint ops
  }
  for (const JournalRecord& rec : recs) {
    const Bytes payload = core::encode_record(rec);
    wire::Writer w(out);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u32(crc32(payload));
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

TEST(GroupCommitTest, BatchOpsOneIsByteIdenticalToPerOpFormat) {
  std::vector<JournalRecord> recs;
  recs.push_back(sample_commit_record());
  for (int i = 0; i < 6; ++i) recs.push_back(begin_record("f" + std::to_string(i)));
  const Bytes expected = expected_journal_image(recs);

  // Default config (batch_ops = 1) must write the legacy per-op format --
  // and fsync once per record, never grouping.
  TempDir dir;
  const fs::path per_op = dir.path() / "per_op.wal";
  {
    Result<std::unique_ptr<Journal>> j = Journal::open(per_op);
    ASSERT_TRUE(j.ok());
    for (const JournalRecord& rec : recs) {
      ASSERT_TRUE(j.value()->append(rec).ok());
    }
    EXPECT_EQ(j.value()->flushes(), recs.size());
    EXPECT_EQ(j.value()->group_commits(), 0u);
  }
  EXPECT_TRUE(equal(read_disk(per_op), expected));

  // Group commit enabled changes fsync cadence only, never bytes: a
  // single-threaded writer produces the identical image.
  const fs::path grouped = dir.path() / "grouped.wal";
  {
    Result<std::unique_ptr<Journal>> j = Journal::open(grouped);
    ASSERT_TRUE(j.ok());
    j.value()->set_group_commit(
        core::GroupCommitConfig{8, std::chrono::microseconds{0}});
    for (const JournalRecord& rec : recs) {
      ASSERT_TRUE(j.value()->append(rec).ok());
    }
  }
  EXPECT_TRUE(equal(read_disk(grouped), expected));
}

TEST(GroupCommitTest, ConcurrentAppendsSurviveCrashAtEveryBatchBoundary) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 48;
  TempDir dir;
  const fs::path path = dir.path() / "j.wal";
  Result<std::unique_ptr<Journal>> opened = Journal::open(path);
  ASSERT_TRUE(opened.ok());
  Journal& j = *opened.value();
  j.set_group_commit(core::GroupCommitConfig{16, std::chrono::milliseconds{5}});

  // The crash-injection seams must see every record exactly once each,
  // regardless of how appends were grouped into flushes.
  std::atomic<std::uint64_t> before_hook{0};
  std::atomic<std::uint64_t> after_hook{0};
  j.test_hook_before_append = [&](const JournalRecord&) { ++before_hook; };
  j.test_hook_after_append = [&](const JournalRecord&) { ++after_hook; };

  // Each thread records, after every returned append, the journal size at
  // that moment: the durability contract says a crash leaving at least
  // that prefix on disk must still contain the record.
  struct Sample {
    std::string filename;
    std::uint64_t durable_bytes;
  };
  std::vector<std::vector<Sample>> samples(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      samples[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        JournalRecord rec;
        rec.op = JournalOp::kBeginPut;
        rec.client = "t" + std::to_string(t);
        rec.filename = "r" + std::to_string(i);
        ASSERT_TRUE(j.append(rec).ok());
        samples[t].push_back(Sample{rec.filename, j.bytes()});
      }
    });
  }
  for (std::thread& th : threads) th.join();

  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(j.total_appended(), kTotal);
  EXPECT_EQ(j.record_count(), kTotal);
  EXPECT_EQ(before_hook.load(), kTotal);
  EXPECT_EQ(after_hook.load(), kTotal);
  // 8 contending writers against a 5 ms batch window: at least one flush
  // must have carried more than one record.
  EXPECT_GT(j.group_commits(), 0u);
  EXPECT_LT(j.flushes(), kTotal);

  // Simulate a crash at every batch boundary a thread observed: truncate
  // the final image to the sampled size and replay. The record whose
  // append had returned by then must be in the surviving prefix.
  const Bytes full = read_disk(path);
  for (std::size_t t = 0; t < kThreads; ++t) {
    const std::string client = "t" + std::to_string(t);
    for (const Sample& s : samples[t]) {
      ASSERT_LE(s.durable_bytes, full.size());
      Result<core::JournalReplay> replay = core::replay_journal_image(
          BytesView(full.data(), static_cast<std::size_t>(s.durable_bytes)));
      ASSERT_TRUE(replay.ok());
      bool found = false;
      for (const JournalRecord& rec : replay.value().records) {
        if (rec.client == client && rec.filename == s.filename) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << client << "/" << s.filename << " missing from a "
                         << s.durable_bytes << "-byte crash prefix";
    }
  }

  // And a clean reopen replays everything.
  Result<std::unique_ptr<Journal>> again = Journal::open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->record_count(), kTotal);
}

TEST(GroupCommitTest, CheckpointQuiescesConcurrentBatches) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 60;
  TempDir dir;
  const fs::path jpath = dir.path() / "j.wal";
  const fs::path cpath = dir.path() / "ckpt.bin";
  Result<std::unique_ptr<Journal>> opened = Journal::open(jpath);
  ASSERT_TRUE(opened.ok());
  Journal& j = *opened.value();
  j.set_group_commit(core::GroupCommitConfig{8, std::chrono::milliseconds{1}});

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        JournalRecord rec;
        rec.op = JournalOp::kBeginPut;
        rec.client = "t" + std::to_string(t);
        rec.filename = "r" + std::to_string(i);
        ASSERT_TRUE(j.append(rec).ok());
      }
    });
  }
  // Checkpoint while batches are in flight: each call must quiesce the
  // commit queue, fold whatever has landed, and leave the counters exact.
  const Bytes snapshot = payload_of(64, 3);
  for (int c = 0; c < 5; ++c) {
    ASSERT_TRUE(j.checkpoint([&] { return snapshot; }, cpath).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& th : threads) th.join();

  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(j.total_appended(), kTotal);
  // Every append is either folded into the checkpoint or still journaled;
  // none may be double-counted or lost across the truncations.
  EXPECT_EQ(j.last_checkpoint_ops() + j.record_count(), kTotal);

  Result<std::unique_ptr<Journal>> again = Journal::open(jpath);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->last_checkpoint_ops() + again.value()->record_count(),
            kTotal);
}

TEST(RecoveryTest, FreshWorldRecoversEmpty) {
  TempDir dir;
  Result<core::RecoveredState> rec = core::recover_metadata(
      dir.path() / "metadata.bin", dir.path() / "journal.wal");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().metadata->total_chunks(), 0u);
  EXPECT_TRUE(rec.value().in_flight.empty());
  EXPECT_EQ(rec.value().replayed_records, 0u);
}

// --- crash-injection sweep --------------------------------------------------

/// Full durable state captured at one crash point: what would be on disk if
/// the process died right there, plus what a correct recovery must yield.
struct Scenario {
  std::string label;
  Bytes journal;
  Bytes checkpoint;  ///< empty = metadata.bin does not exist
  std::vector<std::map<VirtualId, Bytes>> providers;  ///< durable objects
  std::map<std::string, Bytes> expected;  ///< committed file -> content
};

/// Watches a live workload through the journal's append hooks and mints a
/// Scenario for the instant before and after every record hits the disk
/// (plus torn-byte variants of each record). The expected-files tracker
/// advances exactly when a commit-type record lands -- the journal IS the
/// commit point, so the tracker mirrors what recovery is entitled to see.
class CrashRecorder {
 public:
  CrashRecorder(fs::path journal_path, fs::path checkpoint_path,
                storage::ProviderRegistry* registry)
      : journal_path_(std::move(journal_path)),
        checkpoint_path_(std::move(checkpoint_path)),
        registry_(registry) {}

  void install(Journal& journal) {
    journal.test_hook_before_append = [this](const JournalRecord& rec) {
      pending_ = Scenario{};
      pending_.label = "before #" + std::to_string(scenarios_.size()) +
                       " op=" + std::to_string(static_cast<int>(rec.op));
      pending_.journal = read_disk(journal_path_);
      pending_.checkpoint = read_disk(checkpoint_path_);
      pending_.providers = snapshot_providers();
      pending_.expected = expected_;
      scenarios_.push_back(pending_);
    };
    journal.test_hook_after_append = [this](const JournalRecord& rec) {
      advance_expected(rec);
      Scenario after = pending_;
      after.label = "after #" + std::to_string(scenarios_.size()) +
                    " op=" + std::to_string(static_cast<int>(rec.op));
      after.journal = read_disk(journal_path_);
      after.expected = expected_;
      scenarios_.push_back(std::move(after));
    };
  }

  /// Declare the content an upcoming put/update will commit for `file`.
  void will_write(const std::string& file, Bytes content) {
    pending_content_[file] = std::move(content);
  }

  /// Snapshot the current on-disk + provider state outside any append
  /// (e.g. around an explicit checkpoint call).
  Scenario snapshot_now(const std::string& label) {
    Scenario s;
    s.label = label;
    s.journal = read_disk(journal_path_);
    s.checkpoint = read_disk(checkpoint_path_);
    s.providers = snapshot_providers();
    s.expected = expected_;
    return s;
  }

  [[nodiscard]] const std::vector<Scenario>& scenarios() const {
    return scenarios_;
  }

 private:
  std::vector<std::map<VirtualId, Bytes>> snapshot_providers() {
    std::vector<std::map<VirtualId, Bytes>> out(registry_->size());
    for (std::size_t p = 0; p < registry_->size(); ++p) {
      const storage::MemoryStore& store = registry_->at(p).raw_store();
      for (VirtualId id : store.list_ids()) {
        Result<Bytes> obj = store.get(id);
        if (obj.ok()) out[p][id] = std::move(obj).value();
      }
    }
    return out;
  }

  void advance_expected(const JournalRecord& rec) {
    switch (rec.op) {
      case JournalOp::kCommitPut:
      case JournalOp::kUpdateChunk: {
        if (rec.filename.empty()) break;  // repair/rebalance rewrite
        auto it = pending_content_.find(rec.filename);
        if (it != pending_content_.end()) expected_[rec.filename] = it->second;
        break;
      }
      case JournalOp::kRemoveFile:
        expected_.erase(rec.filename);
        break;
      default:
        break;
    }
  }

  fs::path journal_path_;
  fs::path checkpoint_path_;
  storage::ProviderRegistry* registry_;
  std::map<std::string, Bytes> pending_content_;
  std::map<std::string, Bytes> expected_;
  Scenario pending_;
  std::vector<Scenario> scenarios_;
};

/// Reconstructs a world from a crash Scenario and asserts full convergence:
/// recovery succeeds, committed files read back byte-identical, uncommitted
/// files are gone, reconciliation leaves zero unreferenced provider
/// objects, and a second recovery pass changes nothing.
void verify_recovery(const Scenario& sc,
                     const std::set<std::string>& universe) {
  SCOPED_TRACE(sc.label);
  TempDir dir;
  const fs::path jpath = dir.path() / "journal.wal";
  const fs::path cpath = dir.path() / "metadata.bin";
  write_disk(jpath, sc.journal);
  if (!sc.checkpoint.empty()) write_disk(cpath, sc.checkpoint);

  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  for (std::size_t p = 0; p < sc.providers.size(); ++p) {
    for (const auto& [id, bytes] : sc.providers[p]) {
      ASSERT_TRUE(registry.at(p).put(id, bytes).ok());
    }
  }

  Result<core::RecoveredState> recovered = core::recover_metadata(cpath, jpath);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  Result<std::unique_ptr<Journal>> reopened = Journal::open(jpath);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();

  core::DistributorConfig config = base_config(0xFE11BACC);
  config.journal = std::shared_ptr<Journal>(std::move(reopened.value()));
  config.checkpoint_path = cpath.string();
  core::CloudDataDistributor cdd(registry, config,
                                 recovered.value().metadata);
  Result<core::CloudDataDistributor::ReconcileReport> report =
      cdd.reconcile(recovered.value().in_flight);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  // Committed files come back byte-identical; anything else is gone.
  for (const std::string& file : universe) {
    auto want = sc.expected.find(file);
    Result<Bytes> got = cdd.get_file("alice", "pw", file);
    if (want != sc.expected.end()) {
      ASSERT_TRUE(got.ok()) << file << ": " << got.status().to_string();
      EXPECT_TRUE(equal(got.value(), want->second)) << file;
    } else {
      EXPECT_FALSE(got.ok()) << file << " should not have survived";
    }
  }

  // Zero orphans: every provider object is referenced by a live chunk row.
  std::set<std::pair<ProviderIndex, VirtualId>> referenced;
  for (const core::ChunkEntry& entry :
       recovered.value().metadata->chunk_table()) {
    if (entry.deleted) continue;
    for (const core::ShardLocation& loc : entry.stripe) {
      referenced.insert({loc.provider, loc.virtual_id});
    }
    for (const core::ShardLocation& loc : entry.snapshot) {
      referenced.insert({loc.provider, loc.virtual_id});
    }
  }
  for (std::size_t p = 0; p < registry.size(); ++p) {
    for (VirtualId id : registry.at(p).list_ids()) {
      EXPECT_TRUE(referenced.count({static_cast<ProviderIndex>(p), id}))
          << "orphan object " << id << " at provider " << p;
    }
  }

  // Idempotence: recovering the recovered world is a no-op.
  Result<core::RecoveredState> second = core::recover_metadata(cpath, jpath);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().in_flight.empty());
  Result<core::CloudDataDistributor::ReconcileReport> again =
      cdd.reconcile(second.value().in_flight);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().orphans_removed, 0u);
  EXPECT_EQ(again.value().stale_ids, 0u);
  EXPECT_EQ(again.value().aborted_files, 0u);
}

TEST(RecoveryTest, CrashInjectionSweep) {
  TempDir dir;
  const fs::path jpath = dir.path() / "journal.wal";
  const fs::path cpath = dir.path() / "metadata.bin";
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  CrashRecorder recorder(jpath, cpath, &registry);

  const Bytes f1 = payload_of(9000, 1);
  const Bytes f2 = payload_of(5000, 2);
  const Bytes f3 = payload_of(7000, 3);
  const Bytes f4 = payload_of(4000, 4);
  const std::set<std::string> universe = {"f1", "f2", "f3", "f4"};
  std::vector<Scenario> checkpoint_scenarios;
  Bytes f1_updated;

  {
    Result<std::unique_ptr<Journal>> j = Journal::open(jpath);
    ASSERT_TRUE(j.ok());
    recorder.install(*j.value());
    core::DistributorConfig config = base_config(0x5EED);
    config.journal = std::shared_ptr<Journal>(std::move(j.value()));
    config.checkpoint_path = cpath.string();
    core::CloudDataDistributor cdd(registry, config, nullptr);

    ASSERT_TRUE(cdd.register_client("alice").ok());
    ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kModerate).ok());
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;

    recorder.will_write("f1", f1);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f1", f1, opts).ok());
    recorder.will_write("f2", f2);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f2", f2, opts).ok());

    // Crash-around-checkpoint coverage: the state just before the cut, just
    // after it, and the nasty in-between where the new checkpoint image
    // exists but the journal was not yet truncated (records must re-apply
    // onto the checkpoint idempotently).
    Scenario pre_ckpt = recorder.snapshot_now("before checkpoint");
    checkpoint_scenarios.push_back(pre_ckpt);
    ASSERT_TRUE(cdd.checkpoint().ok());
    Scenario post_ckpt = recorder.snapshot_now("after checkpoint");
    checkpoint_scenarios.push_back(post_ckpt);
    Scenario between = post_ckpt;
    between.label = "checkpoint written, journal not yet truncated";
    between.journal = pre_ckpt.journal;
    checkpoint_scenarios.push_back(std::move(between));

    recorder.will_write("f3", f3);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f3", f3, opts).ok());

    // Same-size rewrite of f1's first chunk, so the expected content is the
    // new chunk spliced onto the original tail.
    Result<Bytes> chunk0 = cdd.get_chunk("alice", "pw", "f1", 0);
    ASSERT_TRUE(chunk0.ok());
    const std::size_t span = chunk0.value().size();
    ASSERT_GT(span, 0u);
    ASSERT_LT(span, f1.size());
    const Bytes fresh = payload_of(span, 11);
    f1_updated = fresh;
    f1_updated.insert(f1_updated.end(), f1.begin() + span, f1.end());
    recorder.will_write("f1", f1_updated);
    ASSERT_TRUE(cdd.update_chunk("alice", "pw", "f1", 0, fresh).ok());

    ASSERT_TRUE(cdd.remove_file("alice", "pw", "f2").ok());

    recorder.will_write("f4", f4);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f4", f4, opts).ok());

    // Live sanity: the tracker agrees with the live world before we start
    // crashing it.
    Result<Bytes> live_f1 = cdd.get_file("alice", "pw", "f1");
    ASSERT_TRUE(live_f1.ok());
    ASSERT_TRUE(equal(live_f1.value(), f1_updated));
  }

  const std::vector<Scenario>& scenarios = recorder.scenarios();
  // ctor(12) + client + password + 4 puts (begin+commit) + update + remove
  // = 24 appends, each captured before and after.
  ASSERT_EQ(scenarios.size(), 48u);
  for (const Scenario& sc : scenarios) verify_recovery(sc, universe);
  for (const Scenario& sc : checkpoint_scenarios) {
    verify_recovery(sc, universe);
  }

  // Torn-record variants: the crash caught write(2) mid-frame, leaving a
  // partial record at the tail. Recovery must treat every such prefix as
  // "record never happened".
  std::size_t torn_checked = 0;
  for (std::size_t i = 0; i + 1 < scenarios.size(); i += 2) {
    const Scenario& before = scenarios[i];
    const Scenario& after = scenarios[i + 1];
    if (after.journal.size() <= before.journal.size()) continue;
    const std::size_t frame = after.journal.size() - before.journal.size();
    for (std::size_t cut : {std::size_t{1}, frame / 2, frame - 1}) {
      if (cut == 0 || cut >= frame) continue;
      Scenario torn = before;
      torn.label = before.label + " torn+" + std::to_string(cut);
      torn.journal.insert(torn.journal.end(),
                          after.journal.begin() + before.journal.size(),
                          after.journal.begin() + before.journal.size() + cut);
      verify_recovery(torn, universe);
      ++torn_checked;
      if (torn_checked >= 24) break;  // bound the sweep's runtime
    }
    if (torn_checked >= 24) break;
  }
  EXPECT_GE(torn_checked, 12u);
}

// --- reconcile --------------------------------------------------------------

TEST(RecoveryTest, ReconcileCollectsInjectedOrphans) {
  TempDir dir;
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  Result<std::unique_ptr<Journal>> j = Journal::open(dir.path() / "j.wal");
  ASSERT_TRUE(j.ok());
  core::DistributorConfig config = base_config(0x0B57AC1E);
  config.journal = std::shared_ptr<Journal>(std::move(j.value()));
  config.checkpoint_path = (dir.path() / "metadata.bin").string();
  core::CloudDataDistributor cdd(registry, config, nullptr);
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kModerate).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  const Bytes content = payload_of(6000, 21);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "keep", content, opts).ok());

  // Junk objects a crashed put might have stranded.
  ASSERT_TRUE(registry.at(2).put(0xDEAD0001, payload_of(700, 31)).ok());
  ASSERT_TRUE(registry.at(5).put(0xDEAD0002, payload_of(800, 32)).ok());
  ASSERT_TRUE(registry.at(9).put(0xDEAD0003, payload_of(900, 33)).ok());

  Result<core::CloudDataDistributor::ReconcileReport> report =
      cdd.reconcile({});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().orphans_removed, 3u);
  EXPECT_FALSE(registry.at(2).contains(0xDEAD0001));
  EXPECT_FALSE(registry.at(5).contains(0xDEAD0002));
  EXPECT_FALSE(registry.at(9).contains(0xDEAD0003));
  Result<Bytes> back = cdd.get_file("alice", "pw", "keep");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), content));
}

// --- scrubber ---------------------------------------------------------------

struct ScrubWorld {
  TempDir dir;
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  std::unique_ptr<core::CloudDataDistributor> cdd;
  Bytes content;

  explicit ScrubWorld(std::size_t bytes = 16000) {
    Result<std::unique_ptr<Journal>> j =
        Journal::open(dir.path() / "j.wal");
    CS_REQUIRE(j.ok(), "journal open failed");
    core::DistributorConfig config = base_config(0x5C4B);
    config.journal = std::shared_ptr<Journal>(std::move(j.value()));
    config.checkpoint_path = (dir.path() / "metadata.bin").string();
    cdd = std::make_unique<core::CloudDataDistributor>(registry, config,
                                                       nullptr);
    CS_REQUIRE(cdd->register_client("alice").ok(), "register");
    CS_REQUIRE(
        cdd->add_password("alice", "pw", PrivacyLevel::kModerate).ok(),
        "password");
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;
    content = payload_of(bytes, 41);
    CS_REQUIRE(cdd->put_file("alice", "pw", "data", content, opts).ok(),
               "put");
  }
};

TEST(ScrubberTest, DetectsAndRepairsEveryInjectedCorruption) {
  ScrubWorld world;
  // Silently corrupt exactly one stripe shard of EVERY chunk -- within the
  // stripe's repair tolerance, but across the whole table.
  std::size_t corrupted = 0;
  for (const core::ChunkEntry& entry : world.cdd->metadata().chunk_table()) {
    if (entry.deleted || entry.stripe.empty()) continue;
    const core::ShardLocation& loc = entry.stripe[corrupted % entry.stripe.size()];
    ASSERT_TRUE(world.registry.at(loc.provider)
                    .corrupt_object(loc.virtual_id, 3)
                    .ok());
    ++corrupted;
  }
  ASSERT_GT(corrupted, 1u);

  core::Scrubber scrubber(*world.cdd);
  Result<std::size_t> repaired = scrubber.run_pass();
  ASSERT_TRUE(repaired.ok()) << repaired.status().to_string();
  const core::Scrubber::Progress progress = scrubber.progress();
  // 100% detection and repair, before any client read observed them.
  EXPECT_EQ(progress.digest_mismatches, corrupted);
  EXPECT_EQ(progress.shards_repaired, corrupted);
  EXPECT_EQ(repaired.value(), corrupted);
  EXPECT_EQ(progress.passes, 1u);

  Result<Bytes> back = world.cdd->get_file("alice", "pw", "data");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), world.content));

  // The guilty providers were charged, and a second pass finds nothing.
  std::uint64_t charged = 0;
  for (std::size_t p = 0; p < world.registry.size(); ++p) {
    charged += world.registry.at(p).counters().scrub_errors.load();
  }
  EXPECT_EQ(charged, corrupted);
  Result<std::size_t> second = scrubber.run_pass();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 0u);
  EXPECT_EQ(scrubber.progress().digest_mismatches, corrupted);
}

TEST(ScrubberTest, BackgroundLoopScansAndStops) {
  ScrubWorld world(8000);
  core::Scrubber::Config config;
  config.pass_interval = std::chrono::milliseconds(1);
  core::Scrubber scrubber(*world.cdd, config);
  scrubber.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scrubber.progress().passes < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  scrubber.stop();
  const core::Scrubber::Progress progress = scrubber.progress();
  EXPECT_GE(progress.passes, 2u);
  EXPECT_GT(progress.chunks_scanned, 0u);
  EXPECT_EQ(progress.digest_mismatches, 0u);
  EXPECT_FALSE(progress.running);
  scrubber.stop();  // double-stop is safe
}

TEST(ScrubberTest, ThrottlePacesScan) {
  ScrubWorld world(8000);
  core::Scrubber::Config config;
  config.chunks_per_sec = 200.0;  // 5ms per chunk
  core::Scrubber scrubber(*world.cdd, config);
  const auto start = std::chrono::steady_clock::now();
  Result<std::size_t> repaired = scrubber.run_pass();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(repaired.ok());
  const std::uint64_t n = scrubber.progress().chunks_scanned;
  ASSERT_GT(n, 0u);
  // n chunks at 5ms floor each; allow generous slack below the ideal to
  // stay robust on loaded CI machines, but the sleep must be observable.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(n * 5 / 2));
}

}  // namespace
}  // namespace cshield

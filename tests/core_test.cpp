// Tests for the core library: chunker, misleading codec, metadata tables,
// placement policy, the CloudDataDistributor end-to-end (upload, access
// control, retrieval, snapshots, removal, outage recovery, repair), the
// multi-distributor group and the client-side DHT distributor.
#include <gtest/gtest.h>

#include <set>

#include "core/chunker.hpp"
#include "core/client_side.hpp"
#include "core/distributor.hpp"
#include "core/misleading.hpp"
#include "core/multi_distributor.hpp"
#include "core/partial_encryption.hpp"
#include "core/placement.hpp"
#include "core/reputation.hpp"
#include "core/tables.hpp"
#include "storage/provider_registry.hpp"

namespace cshield::core {
namespace {

Bytes payload_of(std::size_t n, std::uint64_t seed = 99) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// --- chunker ------------------------------------------------------------------

TEST(ChunkerTest, HigherPrivacyMeansSmallerChunks) {
  const ChunkSizePolicy policy;
  EXPECT_GT(policy.chunk_size(PrivacyLevel::kPublic),
            policy.chunk_size(PrivacyLevel::kLow));
  EXPECT_GT(policy.chunk_size(PrivacyLevel::kLow),
            policy.chunk_size(PrivacyLevel::kModerate));
  EXPECT_GT(policy.chunk_size(PrivacyLevel::kModerate),
            policy.chunk_size(PrivacyLevel::kHigh));
}

TEST(ChunkerTest, SplitJoinRoundTrip) {
  const ChunkSizePolicy policy;
  for (std::size_t n : {0u, 1u, 1023u, 1024u, 1025u, 70000u}) {
    const Bytes data = payload_of(n, n);
    for (int pl = 0; pl < kNumPrivacyLevels; ++pl) {
      const auto chunks =
          split_file(data, privacy_level_from_int(pl), policy);
      EXPECT_TRUE(equal(join_chunks(chunks), data))
          << "n=" << n << " pl=" << pl;
    }
  }
}

TEST(ChunkerTest, ChunkCountMatchesSchedule) {
  const ChunkSizePolicy policy;
  const Bytes data = payload_of(10 * 1024);
  EXPECT_EQ(split_file(data, PrivacyLevel::kPublic, policy).size(), 1u);
  EXPECT_EQ(split_file(data, PrivacyLevel::kHigh, policy).size(), 10u);
}

TEST(ChunkerTest, SerialsAreSequential) {
  const ChunkSizePolicy policy;
  const auto chunks =
      split_file(payload_of(5000), PrivacyLevel::kHigh, policy);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].serial, i);
  }
}

TEST(ChunkerTest, RecordAlignmentNeverSplitsRecords) {
  const ChunkSizePolicy policy;
  const std::size_t record = 48;  // 6 doubles
  const Bytes data = payload_of(record * 100);
  const auto chunks =
      split_file(data, PrivacyLevel::kHigh, policy, record);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.data.size() % record, 0u) << "chunk " << c.serial;
  }
  EXPECT_TRUE(equal(join_chunks(chunks), data));
}

TEST(ChunkerTest, RecordLargerThanChunkStillWorks) {
  const ChunkSizePolicy policy;
  const std::size_t record = 3000;  // larger than the PL3 chunk of 1024
  const Bytes data = payload_of(record * 4);
  const auto chunks = split_file(data, PrivacyLevel::kHigh, policy, record);
  EXPECT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.data.size(), record);
}

TEST(ChunkerTest, EmptyFileYieldsOneEmptyChunk) {
  const auto chunks = split_file({}, PrivacyLevel::kLow, ChunkSizePolicy{});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].data.empty());
}

TEST(ChunkerTest, OutOfOrderJoinThrows) {
  std::vector<RawChunk> chunks;
  chunks.push_back({1, to_bytes("b")});
  chunks.push_back({0, to_bytes("a")});
  EXPECT_THROW((void)join_chunks(chunks), std::invalid_argument);
}

// --- misleading codec ------------------------------------------------------------

TEST(MisleadingTest, InjectStripRoundTrip) {
  Rng rng(1);
  for (double fraction : {0.0, 0.05, 0.25, 0.5, 1.0}) {
    for (std::size_t n : {1u, 10u, 1000u}) {
      const Bytes data = payload_of(n, n + 7);
      const auto enc = MisleadingCodec::inject(data, fraction, rng);
      EXPECT_TRUE(equal(MisleadingCodec::strip(enc.data, enc.positions), data))
          << "fraction=" << fraction << " n=" << n;
    }
  }
}

TEST(MisleadingTest, ChaffCountMatchesFraction) {
  Rng rng(2);
  const Bytes data = payload_of(1000);
  const auto enc = MisleadingCodec::inject(data, 0.25, rng);
  EXPECT_EQ(enc.positions.size(), 250u);
  EXPECT_EQ(enc.data.size(), 1250u);
}

TEST(MisleadingTest, ZeroFractionIsIdentity) {
  Rng rng(3);
  const Bytes data = payload_of(100);
  const auto enc = MisleadingCodec::inject(data, 0.0, rng);
  EXPECT_TRUE(equal(enc.data, data));
  EXPECT_TRUE(enc.positions.empty());
}

TEST(MisleadingTest, PositionsAreSortedAndUnique) {
  Rng rng(4);
  const auto enc = MisleadingCodec::inject(payload_of(500), 0.3, rng);
  for (std::size_t i = 1; i < enc.positions.size(); ++i) {
    EXPECT_LT(enc.positions[i - 1], enc.positions[i]);
  }
  for (std::uint32_t p : enc.positions) {
    EXPECT_LT(p, enc.data.size());
  }
}

TEST(MisleadingTest, EmptyPayloadStaysEmpty) {
  Rng rng(5);
  const auto enc = MisleadingCodec::inject({}, 0.5, rng);
  EXPECT_TRUE(enc.data.empty());
  EXPECT_TRUE(enc.positions.empty());
}

TEST(MisleadingTest, ChaffedBufferDiffersFromRawConcatenation) {
  Rng rng(6);
  const Bytes data = payload_of(400);
  const auto enc = MisleadingCodec::inject(data, 0.2, rng);
  EXPECT_NE(enc.data.size(), data.size());
  EXPECT_FALSE(equal(enc.data, data));
}

// --- metadata tables -------------------------------------------------------------

TEST(MetadataTest, ClientRegistrationAndAuth) {
  MetadataStore meta;
  ASSERT_TRUE(meta.register_client("Bob").ok());
  EXPECT_EQ(meta.register_client("Bob").code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(meta.add_password("Bob", "x9pr", PrivacyLevel::kLow).ok());
  ASSERT_TRUE(meta.add_password("Bob", "Ty7e", PrivacyLevel::kHigh).ok());
  EXPECT_EQ(meta.add_password("Bob", "x9pr", PrivacyLevel::kHigh).code(),
            ErrorCode::kAlreadyExists);

  Result<PrivacyLevel> pl = meta.authenticate("Bob", "x9pr");
  ASSERT_TRUE(pl.ok());
  EXPECT_EQ(pl.value(), PrivacyLevel::kLow);
  EXPECT_EQ(meta.authenticate("Bob", "wrong").status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(meta.authenticate("Eve", "x9pr").status().code(),
            ErrorCode::kNotFound);
}

TEST(MetadataTest, ChunkLinkage) {
  MetadataStore meta;
  ASSERT_TRUE(meta.register_client("CL1").ok());
  ChunkEntry e;
  e.privacy_level = PrivacyLevel::kModerate;
  Result<std::size_t> idx0 = meta.add_chunk("CL1", "cf11", 0, e);
  Result<std::size_t> idx1 = meta.add_chunk("CL1", "cf11", 1, e);
  ASSERT_TRUE(idx0.ok() && idx1.ok());
  const auto refs = meta.file_chunks("CL1", "cf11");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].serial, 0u);
  EXPECT_EQ(refs[1].serial, 1u);
  EXPECT_TRUE(meta.find_chunk("CL1", "cf11", 1).has_value());
  EXPECT_FALSE(meta.find_chunk("CL1", "cf11", 2).has_value());
  ASSERT_TRUE(meta.unlink_chunk("CL1", "cf11", 0).ok());
  EXPECT_EQ(meta.file_chunks("CL1", "cf11").size(), 1u);
  EXPECT_EQ(meta.total_chunks(), 2u);  // table rows are stable tombstones
}

TEST(MetadataTest, ProviderPlacementBookkeeping) {
  MetadataStore meta;
  meta.register_provider("CP1", PrivacyLevel::kHigh, CostLevel::kPremium);
  meta.record_placement(0, 41367);
  meta.record_placement(0, 57643);
  meta.record_removal(0, 41367);
  const auto table = meta.provider_table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].count(), 1u);
  EXPECT_EQ(table[0].virtual_ids[0], 57643u);
}

// --- placement policy ------------------------------------------------------------

TEST(PlacementTest, RespectsTrustEligibility) {
  storage::ProviderRegistry reg = storage::make_default_registry(8);
  PlacementPolicy policy(1);
  for (int trial = 0; trial < 50; ++trial) {
    Result<std::vector<ProviderIndex>> chosen =
        policy.choose(reg, PrivacyLevel::kHigh, 2);
    ASSERT_TRUE(chosen.ok());
    for (ProviderIndex p : chosen.value()) {
      EXPECT_EQ(level_index(reg.at(p).descriptor().privacy_level), 3);
    }
  }
}

TEST(PlacementTest, ProvidersAreDistinct) {
  storage::ProviderRegistry reg = storage::make_default_registry(8);
  PlacementPolicy policy(2);
  Result<std::vector<ProviderIndex>> chosen =
      policy.choose(reg, PrivacyLevel::kPublic, 6);
  ASSERT_TRUE(chosen.ok());
  std::set<ProviderIndex> unique(chosen.value().begin(),
                                 chosen.value().end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(PlacementTest, PrefersCheaperProviders) {
  storage::ProviderRegistry reg;
  storage::ProviderDescriptor cheap;
  cheap.name = "Cheap";
  cheap.privacy_level = PrivacyLevel::kHigh;
  cheap.cost_level = CostLevel::kCheapest;
  storage::ProviderDescriptor pricey;
  pricey.name = "Pricey";
  pricey.privacy_level = PrivacyLevel::kHigh;
  pricey.cost_level = CostLevel::kPremium;
  reg.add(std::move(pricey));
  reg.add(std::move(cheap));
  PlacementPolicy policy(3);
  for (int trial = 0; trial < 20; ++trial) {
    Result<std::vector<ProviderIndex>> chosen =
        policy.choose(reg, PrivacyLevel::kHigh, 1);
    ASSERT_TRUE(chosen.ok());
    EXPECT_EQ(reg.at(chosen.value()[0]).descriptor().name, "Cheap");
  }
}

TEST(PlacementTest, FailsWhenTooFewTrustedProviders) {
  storage::ProviderRegistry reg = storage::make_default_registry(4);
  PlacementPolicy policy(4);
  // Only 2 of 4 default providers are PL3.
  EXPECT_EQ(policy.choose(reg, PrivacyLevel::kHigh, 3).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(PlacementTest, RandomizesWithinCostTier) {
  storage::ProviderRegistry reg = storage::make_default_registry(16);
  PlacementPolicy policy(5);
  std::set<ProviderIndex> first_picks;
  for (int trial = 0; trial < 40; ++trial) {
    Result<std::vector<ProviderIndex>> chosen =
        policy.choose(reg, PrivacyLevel::kPublic, 1);
    ASSERT_TRUE(chosen.ok());
    first_picks.insert(chosen.value()[0]);
  }
  EXPECT_GT(first_picks.size(), 1u) << "placement should be randomized";
}

// --- distributor end-to-end --------------------------------------------------------

struct DistFixture {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config;
  std::unique_ptr<CloudDataDistributor> cdd;

  explicit DistFixture(raid::RaidLevel level = raid::RaidLevel::kRaid5,
                       double misleading = 0.0) {
    config.default_raid = level;
    config.stripe_data_shards = 3;
    config.misleading_fraction = misleading;
    config.worker_threads = 4;
    cdd = std::make_unique<CloudDataDistributor>(registry, config);
    EXPECT_TRUE(cdd->register_client("Bob").ok());
    EXPECT_TRUE(cdd->add_password("Bob", "aB1c", PrivacyLevel::kPublic).ok());
    EXPECT_TRUE(cdd->add_password("Bob", "x9pr", PrivacyLevel::kLow).ok());
    EXPECT_TRUE(cdd->add_password("Bob", "6S4r", PrivacyLevel::kModerate).ok());
    EXPECT_TRUE(cdd->add_password("Bob", "Ty7e", PrivacyLevel::kHigh).ok());
  }
};

TEST(DistributorTest, PutGetRoundTripAllLevels) {
  DistFixture f;
  for (int pl = 0; pl < kNumPrivacyLevels; ++pl) {
    const Bytes data = payload_of(20000 + static_cast<std::size_t>(pl));
    PutOptions opts;
    opts.privacy_level = privacy_level_from_int(pl);
    const std::string name = "file_pl" + std::to_string(pl);
    ASSERT_TRUE(
        f.cdd->put_file("Bob", "Ty7e", name, data, opts).ok());
    Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", name);
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), data));
  }
}

TEST(DistributorTest, ReportCountsChunksAndShards) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;  // 1 KiB chunks
  OpReport report;
  const Bytes data = payload_of(4096);
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "r.bin", data, opts, &report).ok());
  EXPECT_EQ(report.chunks, 4u);
  EXPECT_EQ(report.shards, 4u * 4u);  // raid5 k=3 -> 4 shards per chunk
  EXPECT_EQ(report.bytes_logical, 4096u);
  EXPECT_GT(report.bytes_stored, 4096u);  // parity overhead
  EXPECT_GT(report.sim_time_parallel.count(), 0);
  EXPECT_GE(report.sim_time_serial.count(),
            report.sim_time_parallel.count());
}

TEST(DistributorTest, AccessControlMatrix) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  ASSERT_TRUE(f.cdd->put_file("Bob", "6S4r", "secret.db",
                              payload_of(3000), opts).ok());
  // SV: privilege >= chunk PL passes; below is denied.
  EXPECT_TRUE(f.cdd->get_file("Bob", "Ty7e", "secret.db").ok());
  EXPECT_TRUE(f.cdd->get_file("Bob", "6S4r", "secret.db").ok());
  EXPECT_EQ(f.cdd->get_file("Bob", "x9pr", "secret.db").status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(f.cdd->get_file("Bob", "aB1c", "secret.db").status().code(),
            ErrorCode::kPermissionDenied);
  // Bad password / unknown client.
  EXPECT_EQ(f.cdd->get_file("Bob", "nope", "secret.db").status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(f.cdd->get_file("Eve", "Ty7e", "secret.db").status().code(),
            ErrorCode::kNotFound);
}

TEST(DistributorTest, UploadRequiresPrivilege) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  EXPECT_EQ(f.cdd->put_file("Bob", "x9pr", "f.bin", payload_of(10), opts)
                .code(),
            ErrorCode::kPermissionDenied);
}

TEST(DistributorTest, DuplicateFilenameRejected) {
  DistFixture f;
  PutOptions opts;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "dup", payload_of(10), opts).ok());
  EXPECT_EQ(f.cdd->put_file("Bob", "Ty7e", "dup", payload_of(10), opts).code(),
            ErrorCode::kAlreadyExists);
}

TEST(DistributorTest, GetChunkBySerial) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;  // 1 KiB chunks
  const Bytes data = payload_of(2500);
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "c.bin", data, opts).ok());
  Result<Bytes> c0 = f.cdd->get_chunk("Bob", "Ty7e", "c.bin", 0);
  Result<Bytes> c2 = f.cdd->get_chunk("Bob", "Ty7e", "c.bin", 2);
  ASSERT_TRUE(c0.ok() && c2.ok());
  EXPECT_TRUE(equal(c0.value(), slice(data, 0, 1024)));
  EXPECT_TRUE(equal(c2.value(), slice(data, 2048, 1024)));
  EXPECT_EQ(f.cdd->get_chunk("Bob", "Ty7e", "c.bin", 9).status().code(),
            ErrorCode::kNotFound);
}

TEST(DistributorTest, MisleadingBytesAreTransparentToClients) {
  DistFixture f(raid::RaidLevel::kRaid5, /*misleading=*/0.3);
  const Bytes data = payload_of(5000);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  OpReport report;
  ASSERT_TRUE(
      f.cdd->put_file("Bob", "Ty7e", "chaffed", data, opts, &report).ok());
  EXPECT_GT(report.bytes_stored, data.size() * 5 / 4);  // chaff + parity
  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "chaffed");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(DistributorTest, Raid5SurvivesSingleProviderOutage) {
  DistFixture f(raid::RaidLevel::kRaid5);
  const Bytes data = payload_of(30000);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "hot", data, opts).ok());
  f.registry.at(0).set_online(false);
  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "hot");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(DistributorTest, Raid6SurvivesDoubleProviderOutage) {
  DistFixture f(raid::RaidLevel::kRaid6);
  const Bytes data = payload_of(30000);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;
  opts.raid = raid::RaidLevel::kRaid6;  // "higher assurance" path
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "hot6", data, opts).ok());
  f.registry.at(0).set_online(false);
  f.registry.at(1).set_online(false);
  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "hot6");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(DistributorTest, CorruptionIsDetectedAndRecovered) {
  DistFixture f(raid::RaidLevel::kRaid5);
  const Bytes data = payload_of(8000);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "tampered", data, opts).ok());
  // Corrupt one stored shard at every provider that has objects (only one
  // shard per stripe lands per provider, so RAID-5 still decodes).
  bool corrupted = false;
  for (ProviderIndex p = 0; p < f.registry.size() && !corrupted; ++p) {
    for (VirtualId id : f.registry.at(p).list_ids()) {
      ASSERT_TRUE(f.registry.at(p).corrupt_object(id, 0).ok());
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "tampered");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(DistributorTest, UpdateChunkKeepsSnapshot) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes v1 = payload_of(900, 1);
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "doc", v1, opts).ok());
  EXPECT_EQ(f.cdd->get_chunk_snapshot("Bob", "Ty7e", "doc", 0).status().code(),
            ErrorCode::kNotFound);

  const Bytes v2 = payload_of(800, 2);
  ASSERT_TRUE(f.cdd->update_chunk("Bob", "Ty7e", "doc", 0, v2).ok());
  Result<Bytes> now = f.cdd->get_chunk("Bob", "Ty7e", "doc", 0);
  Result<Bytes> snap = f.cdd->get_chunk_snapshot("Bob", "Ty7e", "doc", 0);
  ASSERT_TRUE(now.ok() && snap.ok());
  EXPECT_TRUE(equal(now.value(), v2));
  EXPECT_TRUE(equal(snap.value(), v1));

  // Second update: snapshot rolls forward to v2.
  const Bytes v3 = payload_of(850, 3);
  ASSERT_TRUE(f.cdd->update_chunk("Bob", "Ty7e", "doc", 0, v3).ok());
  EXPECT_TRUE(equal(f.cdd->get_chunk("Bob", "Ty7e", "doc", 0).value(), v3));
  EXPECT_TRUE(
      equal(f.cdd->get_chunk_snapshot("Bob", "Ty7e", "doc", 0).value(), v2));
}

TEST(DistributorTest, EveryProtectionModeRoundTripsAllOps) {
  // Put / get_file / get_chunk / update_chunk / snapshot under each
  // protection transform, at every PL: the mode is sticky across updates
  // and the snapshot keeps the pre-state's own transform parameters.
  for (ProtectionMode mode :
       {ProtectionMode::kPartialAes, ProtectionMode::kMisleadingBytes,
        ProtectionMode::kFragmentation}) {
    DistFixture f(raid::RaidLevel::kRaid5, 0.1);
    for (int pl = 0; pl < kNumPrivacyLevels; ++pl) {
      const std::string name = "p" + std::to_string(pl);
      const Bytes v1 = payload_of(6000 + static_cast<std::size_t>(pl), 91);
      PutOptions opts;
      opts.privacy_level = privacy_level_from_int(pl);
      opts.protection = mode;
      ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", name, v1, opts).ok());
      Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", name);
      ASSERT_TRUE(back.ok()) << back.status().to_string();
      EXPECT_TRUE(equal(back.value(), v1))
          << protection_mode_name(mode) << " pl=" << pl;
    }
    // Update + snapshot: pre-state (protected under the old nonce) must
    // come back plaintext from the snapshot stripe.
    const Bytes w1 = payload_of(900, 92);
    const Bytes w2 = payload_of(800, 93);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    opts.protection = mode;
    ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "doc", w1, opts).ok());
    ASSERT_TRUE(f.cdd->update_chunk("Bob", "Ty7e", "doc", 0, w2).ok());
    EXPECT_TRUE(equal(f.cdd->get_chunk("Bob", "Ty7e", "doc", 0).value(), w2));
    EXPECT_TRUE(equal(
        f.cdd->get_chunk_snapshot("Bob", "Ty7e", "doc", 0).value(), w1));
  }
}

TEST(DistributorTest, FragmentationHidesPlaintextFromEveryProvider) {
  // A recognizable ASCII motif must not appear in any stored object when
  // the chunk is entangled -- each provider's shard is whitened + mixed.
  DistFixture f;
  Bytes data;
  const std::string motif = "TOP-SECRET-BIDDING-RECORD-";
  while (data.size() < 8000) append(data, to_bytes(motif));
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  opts.protection = ProtectionMode::kFragmentation;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "secret", data, opts).ok());
  const Bytes needle = to_bytes(motif);
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    for (VirtualId id : f.registry.at(p).list_ids()) {
      const Bytes obj = f.registry.at(p).raw_store().get(id).value();
      const auto it = std::search(obj.begin(), obj.end(), needle.begin(),
                                  needle.end());
      EXPECT_EQ(it, obj.end()) << "plaintext motif leaked to provider " << p;
    }
  }
  // And the round trip still works.
  EXPECT_TRUE(equal(f.cdd->get_file("Bob", "Ty7e", "secret").value(), data));
}

TEST(DistributorTest, ConfigProtectionByPlSelectsModePerLevel) {
  // Per-PL defaults: PL0/PL1 keep misleading bytes, PL2/PL3 entangle. The
  // recorded chunk entries carry the negotiated mode.
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config;
  config.stripe_data_shards = 3;
  config.protection_by_pl = {
      ProtectionMode::kMisleadingBytes, ProtectionMode::kMisleadingBytes,
      ProtectionMode::kFragmentation, ProtectionMode::kFragmentation};
  CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("Bob").ok());
  ASSERT_TRUE(cdd.add_password("Bob", "pw", PrivacyLevel::kHigh).ok());
  for (int pl = 0; pl < kNumPrivacyLevels; ++pl) {
    PutOptions opts;
    opts.privacy_level = privacy_level_from_int(pl);
    const std::string name = "f" + std::to_string(pl);
    const Bytes data = payload_of(3000, static_cast<std::uint64_t>(pl) + 50);
    ASSERT_TRUE(cdd.put_file("Bob", "pw", name, data, opts).ok());
    const auto refs = cdd.metadata().file_chunks("Bob", name);
    ASSERT_FALSE(refs.empty());
    Result<core::ChunkEntry> entry =
        cdd.metadata().chunk_entry(refs.front().chunk_index);
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry.value().protection, config.protection_by_pl[
                                            static_cast<std::size_t>(pl)])
        << "pl=" << pl;
    EXPECT_TRUE(equal(cdd.get_file("Bob", "pw", name).value(), data));
  }
}

TEST(DistributorTest, RemoveFileDeletesAllShards) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  ASSERT_TRUE(
      f.cdd->put_file("Bob", "Ty7e", "gone", payload_of(9000), opts).ok());
  std::size_t stored = 0;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    stored += f.registry.at(p).object_count();
  }
  EXPECT_GT(stored, 0u);
  ASSERT_TRUE(f.cdd->remove_file("Bob", "Ty7e", "gone").ok());
  stored = 0;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    stored += f.registry.at(p).object_count();
  }
  EXPECT_EQ(stored, 0u);
  EXPECT_EQ(f.cdd->get_file("Bob", "Ty7e", "gone").status().code(),
            ErrorCode::kNotFound);
}

TEST(DistributorTest, PartialPutFailureRollsBackAllStripes) {
  for (bool pipelined : {true, false}) {
    storage::ProviderRegistry registry;
    for (int i = 0; i < 5; ++i) {
      storage::ProviderDescriptor d;
      d.name = "P" + std::to_string(i);
      d.privacy_level = PrivacyLevel::kHigh;
      d.cost_level = CostLevel::kCheapest;
      registry.add(std::move(d));
    }
    DistributorConfig config;
    config.stripe_data_shards = 3;
    config.pipelined = pipelined;
    CloudDataDistributor cdd(registry, config);
    ASSERT_TRUE(cdd.register_client("Bob").ok());
    ASSERT_TRUE(cdd.add_password("Bob", "Ty7e", PrivacyLevel::kHigh).ok());

    // Two of the five eligible providers are down. Eligibility is trust,
    // not availability, so placement keeps selecting them -- and with only
    // one provider outside each 4-wide stripe, the write-quarantine
    // re-placement path cannot rescue a stripe that lost two shards (or
    // whose only spare is the other dead provider): every stripe fails.
    registry.at(3).set_online(false);
    registry.at(4).set_online(false);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;  // 1 KiB chunks -> 64 chunks
    const Bytes data = payload_of(64 * 1024, pipelined ? 11 : 12);
    EXPECT_FALSE(cdd.put_file("Bob", "Ty7e", "wedge", data, opts).ok())
        << "pipelined=" << pipelined;

    // No orphans: every shard of every stripe written before the failure
    // must have been dropped again.
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      EXPECT_EQ(registry.at(p).object_count(), 0u)
          << "pipelined=" << pipelined << " provider " << p;
    }
    for (const auto& row : cdd.metadata().provider_table()) {
      EXPECT_EQ(row.count(), 0u) << row.name;
    }
    EXPECT_TRUE(cdd.metadata().file_chunks("Bob", "wedge").empty());

    // The filename claim was released with the rollback: a retry once the
    // providers recover succeeds and round-trips. The retries against the
    // dead providers opened their breakers; recovery resets them (the
    // operator's "provider is back" action -- organic half-open healing is
    // chaos_test territory).
    registry.at(3).set_online(true);
    registry.at(4).set_online(true);
    registry.breaker(3).reset();
    registry.breaker(4).reset();
    ASSERT_TRUE(cdd.put_file("Bob", "Ty7e", "wedge", data, opts).ok());
    Result<Bytes> back = cdd.get_file("Bob", "Ty7e", "wedge");
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), data));
  }
}

TEST(DistributorTest, SerialModeMatchesPipelined) {
  // pipelined=false is the A/B baseline for bench_throughput; it must stay
  // behaviorally identical to the pipelined engine.
  for (bool pipelined : {true, false}) {
    storage::ProviderRegistry registry = storage::make_default_registry(12);
    DistributorConfig config;
    config.stripe_data_shards = 3;
    config.misleading_fraction = 0.2;
    config.pipelined = pipelined;
    CloudDataDistributor cdd(registry, config);
    ASSERT_TRUE(cdd.register_client("Bob").ok());
    ASSERT_TRUE(cdd.add_password("Bob", "Ty7e", PrivacyLevel::kHigh).ok());
    const Bytes data = payload_of(50000, 77);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;
    ASSERT_TRUE(cdd.put_file("Bob", "Ty7e", "ab.bin", data, opts).ok());
    Result<Bytes> back = cdd.get_file("Bob", "Ty7e", "ab.bin");
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), data)) << "pipelined=" << pipelined;
    ASSERT_TRUE(cdd.remove_file("Bob", "Ty7e", "ab.bin").ok());
    std::size_t stored = 0;
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      stored += registry.at(p).object_count();
    }
    EXPECT_EQ(stored, 0u) << "pipelined=" << pipelined;
  }
}

TEST(DistributorTest, RepairRestoresLostShards) {
  DistFixture f(raid::RaidLevel::kRaid5);
  const Bytes data = payload_of(20000);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "durable", data, opts).ok());

  // A provider goes out of business: its shards are gone for good.
  ProviderIndex victim = kNoProvider;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    if (f.registry.at(p).object_count() > 0) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoProvider);
  f.registry.at(victim).go_out_of_business();

  Result<std::size_t> repaired = f.cdd->repair();
  ASSERT_TRUE(repaired.ok()) << repaired.status().to_string();
  EXPECT_GT(repaired.value(), 0u);

  // Now a SECOND provider can fail and the file still reads (full
  // redundancy was restored).
  ProviderIndex second = kNoProvider;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    if (p != victim && f.registry.at(p).object_count() > 0) {
      second = p;
      break;
    }
  }
  ASSERT_NE(second, kNoProvider);
  f.registry.at(second).set_online(false);
  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "durable");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));

  // Idempotence: nothing left to repair once the second provider returns.
  // The degraded read tripped its breaker; reset it with the recovery,
  // otherwise repair (correctly) treats the quarantined provider's shards
  // as broken and re-homes them.
  f.registry.at(second).set_online(true);
  f.registry.breaker(second).reset();
  Result<std::size_t> again = f.cdd->repair();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
}

TEST(DistributorTest, VirtualIdsConcealClientIdentity) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  const Bytes data = payload_of(5000);
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "veiled.doc", data, opts).ok());
  // Providers see only 64-bit ids; ids must not embed the client name or
  // filename bytes, and must all be distinct.
  std::set<VirtualId> all_ids;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    for (VirtualId id : f.registry.at(p).list_ids()) {
      EXPECT_TRUE(all_ids.insert(id).second) << "duplicate virtual id";
    }
  }
  EXPECT_GT(all_ids.size(), 0u);
}

TEST(DistributorTest, ProviderTableMirrorsPlacement) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;
  ASSERT_TRUE(
      f.cdd->put_file("Bob", "Ty7e", "ledger", payload_of(70000), opts).ok());
  const auto table = f.cdd->metadata().provider_table();
  ASSERT_EQ(table.size(), f.registry.size());
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    EXPECT_EQ(table[p].count(), f.registry.at(p).object_count())
        << "provider " << table[p].name;
  }
}

TEST(DistributorTest, HighSensitivityOnlyOnTrustedProviders) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(
      f.cdd->put_file("Bob", "Ty7e", "top", payload_of(4000), opts).ok());
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    if (f.registry.at(p).object_count() > 0) {
      EXPECT_EQ(level_index(f.registry.at(p).descriptor().privacy_level), 3)
          << "PL3 chunk landed on untrusted provider "
          << f.registry.at(p).descriptor().name;
    }
  }
}

TEST(DistributorTest, ListFilesFiltersByPrivilege) {
  DistFixture f;
  PutOptions low;
  low.privacy_level = PrivacyLevel::kLow;
  PutOptions high;
  high.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "memo.txt", payload_of(20000),
                              low).ok());
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "vault.key", payload_of(2000),
                              high).ok());

  // High-privilege password sees both; low-privilege password cannot even
  // learn the sensitive file's name.
  Result<std::vector<CloudDataDistributor::FileInfo>> all =
      f.cdd->list_files("Bob", "Ty7e");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 2u);
  Result<std::vector<CloudDataDistributor::FileInfo>> some =
      f.cdd->list_files("Bob", "x9pr");
  ASSERT_TRUE(some.ok());
  ASSERT_EQ(some.value().size(), 1u);
  EXPECT_EQ(some.value()[0].filename, "memo.txt");
  EXPECT_EQ(some.value()[0].privacy_level, PrivacyLevel::kLow);
  EXPECT_GT(some.value()[0].chunks, 0u);
  // Bad credentials are rejected before any listing.
  EXPECT_FALSE(f.cdd->list_files("Bob", "nope").ok());
  EXPECT_FALSE(f.cdd->list_files("Eve", "Ty7e").ok());
}

TEST(DistributorTest, EmptyFileRoundTrips) {
  DistFixture f;
  PutOptions opts;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "empty", {}, opts).ok());
  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "empty");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

// --- multi-distributor (Fig. 2) ------------------------------------------------------

TEST(DistributorGroupTest, SecondariesSeePrimaryUploads) {
  storage::ProviderRegistry reg = storage::make_default_registry(12);
  DistributorConfig config;
  config.stripe_data_shards = 3;
  DistributorGroup group(reg, config, 3);
  ASSERT_TRUE(group.register_client("Roy").ok());
  ASSERT_TRUE(group.add_password("Roy", "eV2t", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(12000);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  ASSERT_TRUE(group.put_file("Roy", "eV2t", "shared", data, opts).ok());
  // Every front-end can serve the read -- they share one namespace.
  for (std::size_t i = 0; i < group.size(); ++i) {
    Result<Bytes> back = group.at(i).get_file("Roy", "eV2t", "shared");
    ASSERT_TRUE(back.ok()) << "distributor " << i;
    EXPECT_TRUE(equal(back.value(), data));
  }
}

TEST(DistributorGroupTest, PrimaryIsStablePerClient) {
  storage::ProviderRegistry reg = storage::make_default_registry(8);
  DistributorGroup group(reg, DistributorConfig{}, 4);
  auto& p1 = group.primary_for("Alice");
  auto& p2 = group.primary_for("Alice");
  EXPECT_EQ(&p1, &p2);
}

TEST(DistributorGroupTest, RoundRobinReadsRotate) {
  storage::ProviderRegistry reg = storage::make_default_registry(8);
  DistributorGroup group(reg, DistributorConfig{}, 3);
  std::set<CloudDataDistributor*> seen;
  for (int i = 0; i < 3; ++i) seen.insert(&group.any());
  EXPECT_EQ(seen.size(), 3u);
}

// --- client-side DHT distributor (SIV-C) ----------------------------------------------

TEST(ClientSideTest, PutGetRemoveFlow) {
  storage::ProviderRegistry reg = storage::make_default_registry(12);
  ClientSideConfig cfg;
  cfg.replicas = 2;
  ClientSideDistributor client(reg, cfg);
  const Bytes data = payload_of(50000);
  ASSERT_TRUE(client.put_file("report.pdf", data, PrivacyLevel::kLow).ok());
  Result<Bytes> back = client.get_file("report.pdf");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), data));
  ASSERT_TRUE(client.remove_file("report.pdf").ok());
  EXPECT_EQ(client.get_file("report.pdf").status().code(),
            ErrorCode::kNotFound);
}

TEST(ClientSideTest, ReplicationSurvivesOneProviderLoss) {
  storage::ProviderRegistry reg = storage::make_default_registry(12);
  ClientSideConfig cfg;
  cfg.replicas = 2;
  ClientSideDistributor client(reg, cfg);
  const Bytes data = payload_of(20000);
  ASSERT_TRUE(client.put_file("ha.bin", data, PrivacyLevel::kPublic).ok());
  // Kill one provider holding objects.
  for (ProviderIndex p = 0; p < reg.size(); ++p) {
    if (reg.at(p).object_count() > 0) {
      reg.at(p).set_online(false);
      break;
    }
  }
  Result<Bytes> back = client.get_file("ha.bin");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(ClientSideTest, HighPlacementRespectsTrust) {
  storage::ProviderRegistry reg = storage::make_default_registry(12);
  ClientSideDistributor client(reg, ClientSideConfig{});
  ASSERT_TRUE(
      client.put_file("vault", payload_of(6000), PrivacyLevel::kHigh).ok());
  for (ProviderIndex p = 0; p < reg.size(); ++p) {
    if (reg.at(p).object_count() > 0) {
      EXPECT_EQ(level_index(reg.at(p).descriptor().privacy_level), 3);
    }
  }
}

TEST(ClientSideTest, LocalTableMemoryIsTracked) {
  storage::ProviderRegistry reg = storage::make_default_registry(8);
  ClientSideDistributor client(reg, ClientSideConfig{});
  EXPECT_EQ(client.local_table_bytes(), 0u);
  ASSERT_TRUE(
      client.put_file("m.bin", payload_of(50000), PrivacyLevel::kLow).ok());
  EXPECT_GT(client.local_table_bytes(), 0u);
}

TEST(ClientSideTest, DuplicateFilenameRejected) {
  storage::ProviderRegistry reg = storage::make_default_registry(8);
  ClientSideDistributor client(reg, ClientSideConfig{});
  ASSERT_TRUE(
      client.put_file("d", payload_of(10), PrivacyLevel::kPublic).ok());
  EXPECT_EQ(client.put_file("d", payload_of(10), PrivacyLevel::kPublic).code(),
            ErrorCode::kAlreadyExists);
}

TEST(ClientSideTest, GetChunkBySerial) {
  storage::ProviderRegistry reg = storage::make_default_registry(8);
  ClientSideConfig cfg;
  ClientSideDistributor client(reg, cfg);
  const Bytes data = payload_of(3000);
  ASSERT_TRUE(client.put_file("c", data, PrivacyLevel::kHigh).ok());
  Result<Bytes> c1 = client.get_chunk("c", 1);
  ASSERT_TRUE(c1.ok());
  EXPECT_TRUE(equal(c1.value(), slice(data, 1024, 1024)));
}

// --- makespan model --------------------------------------------------------------------

TEST(MakespanTest, SerialEqualsSumParallelEqualsMax) {
  std::vector<SimDuration> times{SimDuration(100), SimDuration(200),
                                 SimDuration(300)};
  EXPECT_EQ(parallel_makespan(times, 1).count(), 600);
  EXPECT_EQ(parallel_makespan(times, 3).count(), 300);
  EXPECT_EQ(parallel_makespan(times, 100).count(), 300);
}

TEST(MakespanTest, GreedySchedulingPacks) {
  // Channels: {100}, {60, 50} -> makespan 110.
  std::vector<SimDuration> times{SimDuration(100), SimDuration(60),
                                 SimDuration(50)};
  EXPECT_EQ(parallel_makespan(times, 2).count(), 110);
}

TEST(MakespanTest, EmptyIsZero) {
  EXPECT_EQ(parallel_makespan({}, 4).count(), 0);
}

// --- partial encryption (SVII-E) ------------------------------------------------------

crypto::AesKey test_key() {
  return {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 12, 13, 14, 15, 16};
}

TEST(PartialEncryptionTest, SelfInverse) {
  PartialEncryptor enc({"a", "b", "c"}, {"b"}, test_key());
  Bytes data = payload_of(enc.record_size() * 10, 1);
  Result<Bytes> ct = enc.apply(data);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(equal(ct.value(), data));
  Result<Bytes> pt = enc.apply(ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(equal(pt.value(), data));
}

TEST(PartialEncryptionTest, OnlySensitiveFieldsChange) {
  PartialEncryptor enc({"a", "b", "c"}, {"b"}, test_key());
  const std::size_t rec = enc.record_size();
  const Bytes data = payload_of(rec * 5, 2);
  const Bytes ct = enc.apply(data).value();
  for (std::size_t r = 0; r < 5; ++r) {
    // Column a (bytes 0..7) and c (16..23) untouched; b (8..15) encrypted.
    for (std::size_t b = 0; b < 8; ++b) {
      EXPECT_EQ(ct[r * rec + b], data[r * rec + b]);
      EXPECT_EQ(ct[r * rec + 16 + b], data[r * rec + 16 + b]);
    }
    bool b_changed = false;
    for (std::size_t b = 8; b < 16; ++b) {
      b_changed |= ct[r * rec + b] != data[r * rec + b];
    }
    EXPECT_TRUE(b_changed) << "record " << r;
  }
}

TEST(PartialEncryptionTest, RecordsEncryptIndependently) {
  // Decrypting a suffix with the right base_record index works: random
  // access by row, the property the paper's query-overhead argument needs.
  PartialEncryptor enc({"a", "b"}, {"a", "b"}, test_key());
  const std::size_t rec = enc.record_size();
  const Bytes data = payload_of(rec * 8, 3);
  const Bytes ct = enc.apply(data).value();
  const Bytes tail_ct = slice(ct, rec * 5, rec * 3);
  Result<Bytes> tail_pt = enc.apply(tail_ct, /*base_record=*/5);
  ASSERT_TRUE(tail_pt.ok());
  EXPECT_TRUE(equal(tail_pt.value(), BytesView(data.data() + rec * 5,
                                               rec * 3)));
}

TEST(PartialEncryptionTest, RejectsPartialRecords) {
  PartialEncryptor enc({"a"}, {"a"}, test_key());
  EXPECT_FALSE(enc.apply(Bytes(enc.record_size() + 1, 0)).ok());
}

TEST(PartialEncryptionTest, UnknownColumnThrows) {
  EXPECT_THROW(PartialEncryptor({"a"}, {"zz"}, test_key()),
               std::invalid_argument);
}

TEST(PartialEncryptionTest, NoSensitiveColumnsIsIdentity) {
  PartialEncryptor enc({"a", "b"}, {}, test_key());
  const Bytes data = payload_of(enc.record_size() * 3, 4);
  EXPECT_TRUE(equal(enc.apply(data).value(), data));
}

// --- reputation (SIV-A reliability) ---------------------------------------------------

TEST(ReputationTest, StartsTrusted) {
  ReputationTracker tracker(4);
  for (ProviderIndex p = 0; p < 4; ++p) {
    EXPECT_EQ(tracker.tier(p), PrivacyLevel::kHigh);
  }
}

TEST(ReputationTest, FailuresDemoteSuccessesRestore) {
  ReputationTracker tracker(2);
  // Hammer provider 0 with failures until it loses PL3 trust.
  int failures = 0;
  while (tracker.tier(0) == PrivacyLevel::kHigh && failures < 1000) {
    tracker.record(0, false);
    ++failures;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 100);
  EXPECT_LT(level_index(tracker.tier(0)), 3);
  EXPECT_EQ(tracker.tier(1), PrivacyLevel::kHigh);  // untouched peer
  // A long run of successes restores trust.
  for (int i = 0; i < 500; ++i) tracker.record(0, true);
  EXPECT_EQ(tracker.tier(0), PrivacyLevel::kHigh);
}

TEST(ReputationTest, ScoreIsBoundedEwma) {
  ReputationTracker tracker(1);
  for (int i = 0; i < 100; ++i) tracker.record(0, false);
  EXPECT_GE(tracker.score(0), 0.0);
  EXPECT_LT(tracker.score(0), 0.05);
  for (int i = 0; i < 1000; ++i) tracker.record(0, true);
  EXPECT_LE(tracker.score(0), 1.0);
  EXPECT_GT(tracker.score(0), 0.95);
}

TEST(ReputationTest, DemotionSpeedMatchesConfig) {
  ReputationTracker tracker(1);
  const int expected = tracker.failures_to_demote_from_high();
  ReputationTracker fresh(1, ReputationConfig{1.0, 0.05, {0.5, 0.75, 0.9}});
  int n = 0;
  while (fresh.tier(0) == PrivacyLevel::kHigh && n < 1000) {
    fresh.record(0, false);
    ++n;
  }
  EXPECT_EQ(n, expected);
}

// --- rebalance (trust-driven migration) ------------------------------------------------

TEST(RebalanceTest, MigratesShardsOffDemotedProvider) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes data = payload_of(6000);
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "crown", data, opts).ok());

  // Find a provider holding PL3 shards and demote it to PL1 (reputation
  // collapse).
  ProviderIndex demoted = kNoProvider;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    if (f.registry.at(p).object_count() > 0) {
      demoted = p;
      break;
    }
  }
  ASSERT_NE(demoted, kNoProvider);
  // Another PL3 provider must be free to take the shards: promote one of
  // the lower-tier providers to PL3 first (re-rating goes both ways).
  ProviderIndex promoted = kNoProvider;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    if (level_index(f.registry.at(p).descriptor().privacy_level) < 3) {
      promoted = p;
      f.registry.at(p).set_privacy_level(PrivacyLevel::kHigh);
      break;
    }
  }
  ASSERT_NE(promoted, kNoProvider);
  f.registry.at(demoted).set_privacy_level(PrivacyLevel::kLow);

  Result<std::size_t> moved = f.cdd->rebalance();
  ASSERT_TRUE(moved.ok()) << moved.status().to_string();
  EXPECT_GT(moved.value(), 0u);
  EXPECT_EQ(f.registry.at(demoted).object_count(), 0u)
      << "demoted provider must hold no sensitive shards";

  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "crown");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));

  // Idempotent once trust is consistent.
  Result<std::size_t> again = f.cdd->rebalance();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
}

TEST(RebalanceTest, NoopWhenAllProvidersTrusted) {
  DistFixture f;
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  ASSERT_TRUE(
      f.cdd->put_file("Bob", "Ty7e", "calm", payload_of(3000), opts).ok());
  Result<std::size_t> moved = f.cdd->rebalance();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 0u);
}

}  // namespace
}  // namespace cshield::core

// Concurrency stress for the pipelined stripe engine and the indexed
// MetadataStore: 8 client threads interleave put/get/update/remove through
// two distributor front-ends that share one MetadataStore over one provider
// registry (the Fig. 2 multi-distributor topology). Every operation's result
// is integrity-checked, so the test catches lost updates and torn reads as
// well as data races. Run under -fsanitize=thread (CSHIELD_SANITIZE=thread)
// to certify the locking.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/distributor.hpp"
#include "core/journal.hpp"
#include "core/tables.hpp"
#include "obs/telemetry.hpp"
#include "storage/provider_registry.hpp"

namespace cshield::core {
namespace {

constexpr std::size_t kThreads = 8;
constexpr int kItersPerThread = 24;

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

struct SharedFixture {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  std::shared_ptr<MetadataStore> metadata = std::make_shared<MetadataStore>();
  std::vector<std::unique_ptr<CloudDataDistributor>> frontends;

  SharedFixture() {
    for (std::size_t i = 0; i < 2; ++i) {
      DistributorConfig config;
      config.stripe_data_shards = 3;
      config.misleading_fraction = 0.15;
      config.worker_threads = 4;
      // Distinct seeds: each front-end must mint its own virtual-id stream.
      config.seed = 0xC10D0D15ULL + 0x9E3779B9ULL * (i + 1);
      frontends.push_back(std::make_unique<CloudDataDistributor>(
          registry, config, metadata));
    }
  }

  CloudDataDistributor& frontend(std::size_t n) {
    return *frontends[n % frontends.size()];
  }
};

TEST(ConcurrencyTest, InterleavedFileLifecyclesStayConsistent) {
  SharedFixture f;
  for (std::size_t t = 0; t < kThreads; ++t) {
    const std::string client = "C" + std::to_string(t);
    ASSERT_TRUE(f.frontend(t).register_client(client).ok());
    ASSERT_TRUE(
        f.frontend(t).add_password(client, "pw7Q", PrivacyLevel::kHigh).ok());
  }

  std::atomic<int> failures{0};
  auto worker = [&](std::size_t t) {
    const std::string client = "C" + std::to_string(t);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;
    for (int i = 0; i < kItersPerThread; ++i) {
      // Writes go through one front-end, reads through the other -- the
      // shared store is the only thing keeping them coherent.
      CloudDataDistributor& writer = f.frontend(t + i);
      CloudDataDistributor& reader = f.frontend(t + i + 1);
      const std::string name = "f" + std::to_string(i);
      const std::uint64_t seed = t * 1000 + i;
      const Bytes v1 = payload_of(2500 + t * 13 + i, seed);

      if (!writer.put_file(client, "pw7Q", name, v1, opts).ok()) {
        ++failures;
        continue;
      }
      Result<Bytes> back = reader.get_file(client, "pw7Q", name);
      if (!back.ok() || !equal(back.value(), v1)) ++failures;

      const Bytes v2 = payload_of(900, seed ^ 0xBEEF);
      if (!writer.update_chunk(client, "pw7Q", name, 0, v2).ok()) ++failures;
      Result<Bytes> chunk0 = reader.get_chunk(client, "pw7Q", name, 0);
      if (!chunk0.ok() || !equal(chunk0.value(), v2)) ++failures;
      Result<Bytes> snap = reader.get_chunk_snapshot(client, "pw7Q", name, 0);
      if (!snap.ok()) ++failures;

      Result<std::vector<CloudDataDistributor::FileInfo>> listed =
          reader.list_files(client, "pw7Q");
      if (!listed.ok() || listed.value().empty()) ++failures;

      if (!writer.remove_file(client, "pw7Q", name).ok()) ++failures;
      if (reader.get_file(client, "pw7Q", name).status().code() !=
          ErrorCode::kNotFound) {
        ++failures;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Everything was removed; no shard may survive at any provider.
  std::size_t stored = 0;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    stored += f.registry.at(p).object_count();
  }
  EXPECT_EQ(stored, 0u);
}

TEST(ConcurrencyTest, DuplicateFilenameRaceAdmitsExactlyOneWriter) {
  SharedFixture f;
  ASSERT_TRUE(f.frontend(0).register_client("Shared").ok());
  ASSERT_TRUE(f.frontend(0)
                  .add_password("Shared", "pw7Q", PrivacyLevel::kHigh)
                  .ok());

  // All threads race to claim the same filename; the claim must admit
  // exactly one and every loser must roll back to zero footprint.
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &winners, t] {
      PutOptions opts;
      opts.privacy_level = PrivacyLevel::kModerate;
      const Bytes data = payload_of(4000, 0xD00D + t);
      if (f.frontend(t).put_file("Shared", "pw7Q", "contested", data, opts)
              .ok()) {
        ++winners;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);

  Result<Bytes> back = f.frontend(1).get_file("Shared", "pw7Q", "contested");
  ASSERT_TRUE(back.ok()) << back.status().to_string();

  // The winner's file reads back intact and is one of the candidates.
  bool matches_some_candidate = false;
  for (std::size_t t = 0; t < kThreads; ++t) {
    if (equal(back.value(), payload_of(4000, 0xD00D + t))) {
      matches_some_candidate = true;
    }
  }
  EXPECT_TRUE(matches_some_candidate);
}

TEST(ConcurrencyTest, ParallelReadersShareOneFile) {
  SharedFixture f;
  ASSERT_TRUE(f.frontend(0).register_client("Reader").ok());
  ASSERT_TRUE(f.frontend(0)
                  .add_password("Reader", "pw7Q", PrivacyLevel::kHigh)
                  .ok());
  const Bytes data = payload_of(60000, 0xCAFE);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kLow;
  ASSERT_TRUE(
      f.frontend(0).put_file("Reader", "pw7Q", "hot.bin", data, opts).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &data, &failures, t] {
      for (int i = 0; i < 8; ++i) {
        Result<Bytes> back =
            f.frontend(t + i).get_file("Reader", "pw7Q", "hot.bin");
        if (!back.ok() || !equal(back.value(), data)) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// End-to-end hammer over the two perf paths this layer grew: shard puts
// coalesced into cross-op put_many RPCs (ShardBatcher) and metadata appends
// folded into group commits. Eight clients write, verify, and the totals
// must stay exact -- run under TSan this certifies the batcher lanes and
// the journal's leader/waiter protocol.
TEST(ConcurrencyTest, BatchedRpcAndGroupCommitSurviveClientHammer) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("cshield_gc_hammer_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  {
    auto opened = Journal::open(dir / "j.wal");
    ASSERT_TRUE(opened.ok());
    std::shared_ptr<Journal> journal(std::move(opened).value());
    journal->set_group_commit(
        GroupCommitConfig{32, std::chrono::milliseconds(2)});

    storage::ProviderRegistry registry = storage::make_default_registry(12);
    DistributorConfig config;
    config.stripe_data_shards = 3;
    config.misleading_fraction = 0.1;
    config.worker_threads = 4;
    config.seed = 0xBA7C11;
    config.journal = journal;
    config.rpc_batch_shards = 8;
    config.rpc_batch_wait = std::chrono::microseconds(300);
    auto metadata = std::make_shared<MetadataStore>();
    CloudDataDistributor cdd(registry, config, metadata);

    for (std::size_t t = 0; t < kThreads; ++t) {
      const std::string client = "B" + std::to_string(t);
      ASSERT_TRUE(cdd.register_client(client).ok());
      ASSERT_TRUE(
          cdd.add_password(client, "pw7Q", PrivacyLevel::kHigh).ok());
    }

    constexpr int kFiles = 12;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const std::string client = "B" + std::to_string(t);
        PutOptions opts;
        opts.privacy_level = PrivacyLevel::kModerate;
        for (int i = 0; i < kFiles; ++i) {
          const std::string name = "s" + std::to_string(i);
          const Bytes data = payload_of(1024 + t * 211 + i * 97, t * 100 + i);
          if (!cdd.put_file(client, "pw7Q", name, data, opts).ok()) {
            ++failures;
            continue;
          }
          Result<Bytes> back = cdd.get_file(client, "pw7Q", name);
          if (!back.ok() || !equal(back.value(), data)) ++failures;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);

    // The batched data path actually carried the shards...
    std::uint64_t batch_rpcs = 0;
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      batch_rpcs += registry.at(p).counters().batch_requests.load();
    }
    EXPECT_GT(batch_rpcs, 0u);
    // ...and every metadata mutation reached the journal (1 begin + 1
    // commit per successful put, plus client/password registrations).
    EXPECT_GE(journal->total_appended(),
              static_cast<std::uint64_t>(kThreads) * (2 + 2 * kFiles));
  }

  // The group-committed journal replays cleanly after "the process" exits.
  auto reopened = Journal::open(dir / "j.wal");
  ASSERT_TRUE(reopened.ok());
  EXPECT_GT(reopened.value()->record_count(), 0u);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Hammers one Telemetry sink from many writer threads (counters, gauges,
// histograms, spans) while a reader thread continuously snapshots and
// renders it. Verifies nothing is lost: counter totals, histogram counts
// and the tracer's recorded() tally must all equal the work submitted.
TEST(ConcurrencyTest, TelemetryHammerKeepsExactTotals) {
  constexpr std::size_t kWriters = 8;
  constexpr int kOpsPerWriter = 2000;
  obs::Telemetry tel(true, /*span_capacity=*/256);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)tel.metrics().snapshot();
      (void)tel.metrics().to_prometheus();
      (void)tel.metrics().to_json();
      (void)tel.tracer().snapshot();
      (void)tel.tracer().to_jsonl();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&tel, t] {
      // Shared metric plus a per-thread one: exercises both contended RMWs
      // and the shared-lock name lookup from many threads at once.
      obs::Counter& shared = tel.metrics().counter("hammer.shared_total");
      obs::Counter& mine =
          tel.metrics().counter("hammer.t" + std::to_string(t) + "_total");
      obs::Histogram& lat = tel.metrics().histogram("hammer.lat_ns");
      obs::Gauge& depth = tel.metrics().gauge("hammer.depth");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        depth.add(1);
        shared.inc();
        mine.inc();
        lat.observe(1e3 * static_cast<double>(i % 1000 + 1));
        obs::SpanRecord proto;
        proto.op_id = tel.tracer().next_id();
        proto.name = "hammer";
        obs::ScopedSpan span(&tel, std::move(proto));
        span.rec().sim_ns = i;
        depth.add(-1);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  constexpr std::uint64_t kTotal = kWriters * kOpsPerWriter;
  const obs::MetricsRegistry::Snapshot s = tel.metrics().snapshot();
  EXPECT_EQ(s.counters.at("hammer.shared_total"), kTotal);
  for (std::size_t t = 0; t < kWriters; ++t) {
    EXPECT_EQ(s.counters.at("hammer.t" + std::to_string(t) + "_total"),
              static_cast<std::uint64_t>(kOpsPerWriter));
  }
  const auto& lat = s.histograms.at("hammer.lat_ns");
  EXPECT_EQ(lat.count, kTotal);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t c : lat.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, kTotal);
  EXPECT_EQ(s.gauges.at("hammer.depth"), 0);
  EXPECT_EQ(tel.tracer().recorded(), kTotal);
  EXPECT_EQ(tel.tracer().snapshot().size(), tel.tracer().capacity());
}

}  // namespace
}  // namespace cshield::core

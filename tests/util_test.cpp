// Tests for the util foundation layer: bytes, Status/Result, Rng, hashing,
// ThreadPool, stats, TextTable, SimClock.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace cshield {
namespace {

// --- bytes -----------------------------------------------------------------

TEST(BytesTest, RoundTripString) {
  const Bytes b = to_bytes("hello cloud");
  EXPECT_EQ(to_string(b), "hello cloud");
  EXPECT_EQ(b.size(), 11u);
}

TEST(BytesTest, SliceWithinBounds) {
  const Bytes b = to_bytes("abcdefgh");
  EXPECT_EQ(to_string(slice(b, 2, 3)), "cde");
}

TEST(BytesTest, SliceClampsAtEnd) {
  const Bytes b = to_bytes("abcdefgh");
  EXPECT_EQ(to_string(slice(b, 6, 100)), "gh");
}

TEST(BytesTest, SlicePastEndIsEmpty) {
  const Bytes b = to_bytes("abc");
  EXPECT_TRUE(slice(b, 5, 2).empty());
}

TEST(BytesTest, AppendConcatenates) {
  Bytes a = to_bytes("foo");
  append(a, to_bytes("bar"));
  EXPECT_EQ(to_string(a), "foobar");
}

TEST(BytesTest, EqualComparesContent) {
  EXPECT_TRUE(equal(to_bytes("xy"), to_bytes("xy")));
  EXPECT_FALSE(equal(to_bytes("xy"), to_bytes("xz")));
  EXPECT_FALSE(equal(to_bytes("xy"), to_bytes("xyz")));
}

TEST(BytesTest, HexRoundTrip) {
  const Bytes b = {0x00, 0x0F, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(b), "000fabff");
  EXPECT_TRUE(equal(from_hex("000fabff"), b));
  EXPECT_TRUE(equal(from_hex("000FABFF"), b));
}

TEST(BytesTest, FromHexRejectsBadInput) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
}

TEST(BytesTest, XorIntoIsSelfInverse) {
  Bytes a = to_bytes("secret01");
  const Bytes key = to_bytes("keykeyke");
  Bytes x = a;
  xor_into(x, key);
  EXPECT_FALSE(equal(x, a));
  xor_into(x, key);
  EXPECT_TRUE(equal(x, a));
}

// --- status / result ---------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("chunk 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: chunk 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Unavailable("down");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOnErrorThrows) {
  Result<int> r = Status::NotFound("x");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ResultTest, OkStatusWithoutValueThrows) {
  EXPECT_THROW((Result<int>(Status::Ok())), std::logic_error);
}

TEST(RequireTest, ThrowsOnViolation) {
  EXPECT_THROW(CS_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(CS_REQUIRE(true, "fine"));
}

// --- rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.02);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  EXPECT_EQ(fa.next(), fb.next());
  Rng fc = b.fork(2);
  EXPECT_NE(fa.next(), fc.next());
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

// --- hash ----------------------------------------------------------------------

TEST(HashTest, Fnv1aKnownValue) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view{}), 0xCBF29CE484222325ULL);
}

TEST(HashTest, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a64("file1"), fnv1a64("file2"));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    total += __builtin_popcountll(mix64(i) ^ mix64(i ^ 1ULL));
  }
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(HashTest, Crc32KnownVector) {
  // The standard CRC-32 (reflected, poly 0xEDB88320) check value.
  const std::string_view check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(HashTest, Crc32DetectsSingleBitFlips) {
  Bytes data = to_bytes("write-ahead journal frame payload");
  const std::uint32_t clean = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(data), clean) << "offset " << i << " bit " << bit;
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

// --- thread pool -----------------------------------------------------------------

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SizeReportsWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

// --- stats ----------------------------------------------------------------------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(StatsTest, PercentileInplaceMatchesCopyingVersion) {
  Rng rng(0xBEEF);
  std::vector<double> v(501);
  for (double& x : v) x = static_cast<double>(rng.below(100000)) / 7.0;
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    std::vector<double> scratch = v;
    EXPECT_DOUBLE_EQ(percentile_inplace(scratch, q), percentile(v, q)) << q;
  }
}

TEST(StatsTest, PercentileInplaceRepeatedCallsStayCorrect) {
  // nth_element reorders the span; order statistics are permutation-
  // invariant, so asking again (even for other quantiles) must agree.
  std::vector<double> v{9, 1, 8, 2, 7, 3, 6, 4, 5};
  const double p50_first = percentile_inplace(v, 0.5);
  const double p25 = percentile_inplace(v, 0.25);
  const double p50_again = percentile_inplace(v, 0.5);
  EXPECT_DOUBLE_EQ(p50_first, 5.0);
  EXPECT_DOUBLE_EQ(p50_again, 5.0);
  EXPECT_DOUBLE_EQ(p25, 3.0);
}

TEST(StatsTest, PercentileLeavesCallerVectorUntouched) {
  const std::vector<double> v{4, 3, 2, 1};
  const std::vector<double> before = v;
  (void)percentile(v, 0.75);
  EXPECT_EQ(v, before);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateIsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

// --- table ---------------------------------------------------------------------

TEST(TableTest, PrintsAlignedColumns) {
  TextTable t({"name", "count"});
  t.add("alpha", 12);
  t.add("b", 3);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("count"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvQuotesSpecialCells) {
  TextTable t({"a", "b"});
  t.add("x,y", "plain");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(TableTest, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TableTest, FmtFixesPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
}

// --- sim clock -------------------------------------------------------------------

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.advance(SimDuration(100));
  clock.advance(SimDuration(50));
  EXPECT_EQ(clock.now().count(), 150);
}

TEST(SimClockTest, AdvanceToNeverMovesBackwards) {
  SimClock clock;
  clock.advance(SimDuration(200));
  clock.advance_to(SimDuration(100));
  EXPECT_EQ(clock.now().count(), 200);
  clock.advance_to(SimDuration(500));
  EXPECT_EQ(clock.now().count(), 500);
}

TEST(SimClockTest, ResetZeroes) {
  SimClock clock;
  clock.advance(SimDuration(42));
  clock.reset();
  EXPECT_EQ(clock.now().count(), 0);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += i;
  // Keep the loop alive without deprecated volatile compound assignment.
  asm volatile("" : : "g"(&sink) : "memory");
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  EXPECT_GE(sw.elapsed_ns(), 0);
}

}  // namespace
}  // namespace cshield

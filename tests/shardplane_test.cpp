// Sharded metadata/journal plane: routing discipline, shard-stamped
// on-disk images, parallel recovery, and the 4-shard crash-injection
// sweep.
//
// Three layers under test:
//   1. MetadataPlane / DistributorGroup routing -- writes land on the
//      client's primary front-end, reads round-robin over every front-end,
//      and either way the op resolves against the owning shard partition;
//   2. the v4 shard-stamped journal/checkpoint images -- every member of
//      an N-shard plane names its place, wrong-shape opens are refused,
//      and a 1-shard plane stays bit- and path-compatible with the
//      unsharded v3 layout;
//   3. crash recovery -- recover_plane replays all N journals in parallel,
//      and a crash at ANY per-shard append boundary (including broadcast
//      fan-outs and concurrent appends to different shards) recovers with
//      zero lost chunks, zero orphans, idempotently.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/distributor.hpp"
#include "core/journal.hpp"
#include "core/metadata_plane.hpp"
#include "core/multi_distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/hash.hpp"

namespace cshield {
namespace {

namespace fs = std::filesystem;
using core::Journal;
using core::JournalOp;
using core::JournalRecord;
using core::MetadataPlane;

constexpr std::size_t kShards = 4;
constexpr std::size_t kProviders = 12;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("cshield_shardplane_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

Bytes read_disk(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  Bytes data(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

void write_disk(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

core::DistributorConfig base_config(std::uint64_t seed) {
  core::DistributorConfig config;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.05;
  config.worker_threads = 4;
  config.seed = seed;
  return config;
}

/// A journaled N-shard plane under `dir`: shard k's journal/checkpoint at
/// the shard_file_path of journal.wal / metadata.bin. `stores` empty makes
/// fresh partitions (a new deployment); otherwise it is recovered state.
std::shared_ptr<MetadataPlane> open_plane(
    const fs::path& dir, std::size_t shards,
    std::vector<std::shared_ptr<core::MetadataStore>> stores = {}) {
  std::vector<MetadataPlane::Partition> parts(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    Result<std::unique_ptr<Journal>> j = Journal::open(
        core::shard_file_path(dir / "journal.wal", k),
        static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(shards));
    CS_REQUIRE(j.ok(), j.status().to_string());
    parts[k].journal = std::shared_ptr<Journal>(std::move(j.value()));
    parts[k].store = stores.empty() ? std::make_shared<core::MetadataStore>()
                                    : stores[k];
    parts[k].checkpoint_path = core::shard_file_path(dir / "metadata.bin", k);
  }
  return std::make_shared<MetadataPlane>(std::move(parts));
}

// --- routing discipline -----------------------------------------------------

TEST(ShardMapTest, ShardOfIsDeterministicAndSpreads) {
  std::set<std::size_t> hit;
  for (int c = 0; c < 8; ++c) {
    for (int f = 0; f < 8; ++f) {
      const std::string client = "client" + std::to_string(c);
      const std::string file = "file" + std::to_string(f);
      const std::size_t s = MetadataPlane::shard_of(client, file, kShards);
      EXPECT_LT(s, kShards);
      EXPECT_EQ(s, MetadataPlane::shard_of(client, file, kShards));
      hit.insert(s);
    }
  }
  // 64 (client, file) pairs over 4 shards: a consistent hash that parked
  // everything on one shard would be a serialization bug, not bad luck.
  EXPECT_EQ(hit.size(), kShards);
}

TEST(ShardMapTest, GlobalIndexInterleavingRoundTrips) {
  std::vector<MetadataPlane::Partition> parts(kShards);
  for (auto& p : parts) p.store = std::make_shared<core::MetadataStore>();
  MetadataPlane plane(std::move(parts));
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (std::size_t local = 0; local < 17; ++local) {
      const std::size_t global = plane.to_global(shard, local);
      EXPECT_EQ(plane.shard_of_index(global), shard);
      EXPECT_EQ(plane.local_index(global), local);
    }
  }
}

TEST(DistributorGroupTest, PrimaryAssignmentIgnoresFilenames) {
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  core::DistributorGroup group(registry, base_config(0xA11CE), 8, kShards);
  // The primary is a function of the client name alone: renaming or adding
  // files must never migrate a client to another front-end, and every
  // group member (here: a second group over the same config) computes the
  // identical assignment.
  core::DistributorGroup twin(registry, base_config(0xA11CE), 8, kShards);
  std::set<std::size_t> used;
  for (int c = 0; c < 32; ++c) {
    const std::string client = "tenant" + std::to_string(c);
    const std::size_t primary = group.primary_index(client);
    EXPECT_LT(primary, group.size());
    EXPECT_EQ(primary, twin.primary_index(client));
    EXPECT_EQ(primary, group.primary_index(client));  // stable
    used.insert(primary);
  }
  EXPECT_GT(used.size(), 1u);  // 32 tenants spread over 8 front-ends
}

TEST(DistributorGroupTest, PrimaryWriteAnyReadAcrossShardBoundaries) {
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  core::DistributorGroup group(registry, base_config(0xF00D), 4, kShards);

  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  std::map<std::pair<std::string, std::string>, Bytes> want;
  for (int c = 0; c < 6; ++c) {
    const std::string client = "client" + std::to_string(c);
    ASSERT_TRUE(group.register_client(client).ok());
    ASSERT_TRUE(
        group.add_password(client, "pw", PrivacyLevel::kModerate).ok());
    for (int f = 0; f < 4; ++f) {
      const std::string file = "file" + std::to_string(f);
      Bytes data = payload_of(3000 + 511 * f, 100 * c + f);
      ASSERT_TRUE(group.put_file(client, "pw", file, data, opts).ok());
      want[{client, file}] = std::move(data);
    }
  }

  // Every file reads back byte-identical through the round-robin read
  // path -- a secondary front-end resolves against the same owning shard
  // the primary committed to.
  for (const auto& [key, data] : want) {
    Result<Bytes> got = group.get_file(key.first, "pw", key.second);
    ASSERT_TRUE(got.ok()) << key.first << "/" << key.second << ": "
                          << got.status().to_string();
    EXPECT_TRUE(equal(got.value(), data)) << key.first << "/" << key.second;
  }

  // Load attribution: writes sit exactly on each client's primary; reads
  // round-robin, so the serving front-end (not the primary) is charged.
  std::vector<core::DistributorGroup::FrontEndLoad> load = group.load();
  std::vector<std::uint64_t> want_writes(group.size(), 0);
  for (int c = 0; c < 6; ++c) {
    const std::string client = "client" + std::to_string(c);
    want_writes[group.primary_index(client)] += 2 + 4;  // register+pw+4 puts
  }
  std::uint64_t reads_total = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    EXPECT_EQ(load[i].writes, want_writes[i]) << "front-end " << i;
    reads_total += load[i].reads;
    // 24 reads over 4 front-ends round-robin: everyone served some.
    EXPECT_GT(load[i].reads, 0u) << "front-end " << i;
  }
  EXPECT_EQ(reads_total, want.size());

  // The files live in more than one shard partition (the namespace really
  // is spread), and each lives in exactly one.
  const MetadataPlane& plane = *group.plane();
  std::size_t populated = 0;
  for (std::size_t s = 0; s < plane.shard_count(); ++s) {
    if (plane.store(s).total_chunks() > 0) ++populated;
  }
  EXPECT_GT(populated, 1u);

  // Updates route through the primary and stay visible to secondaries.
  const std::string client = "client3";
  Result<Bytes> chunk0 = group.get_chunk(client, "pw", "file0", 0);
  ASSERT_TRUE(chunk0.ok());
  const Bytes fresh = payload_of(chunk0.value().size(), 777);
  ASSERT_TRUE(group.update_chunk(client, "pw", "file0", 0, fresh).ok());
  Bytes expected = fresh;
  const Bytes& orig = want[{client, "file0"}];
  expected.insert(expected.end(), orig.begin() + fresh.size(), orig.end());
  for (std::size_t i = 0; i < 2 * group.size(); ++i) {
    Result<Bytes> got = group.get_file(client, "pw", "file0");
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(equal(got.value(), expected));
  }

  ASSERT_TRUE(group.remove_file(client, "pw", "file1").ok());
  EXPECT_FALSE(group.get_file(client, "pw", "file1").ok());
  Result<std::vector<core::CloudDataDistributor::FileInfo>> files =
      group.list_files(client, "pw");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files.value().size(), 3u);
}

// --- shard-stamped images ---------------------------------------------------

TEST(ShardStampTest, MembersCarryTheirStampAndRejectWrongShapes) {
  TempDir dir;
  {
    std::shared_ptr<MetadataPlane> plane = open_plane(dir.path(), kShards);
    JournalRecord rec;
    rec.op = JournalOp::kRegisterClient;
    rec.client = "alice";
    for (std::size_t k = 0; k < kShards; ++k) {
      ASSERT_TRUE(plane->journal(k)->append(rec).ok());
    }
  }
  for (std::size_t k = 0; k < kShards; ++k) {
    const fs::path p = core::shard_file_path(dir.path() / "journal.wal", k);
    Result<core::JournalShardInfo> info = core::probe_journal_shard(p);
    ASSERT_TRUE(info.ok()) << p;
    EXPECT_EQ(info.value().shard_index, k);
    EXPECT_EQ(info.value().shard_count, kShards);
  }
  // Wrong count, wrong index, and legacy-unsharded opens are all refused
  // with an error that names both stamps.
  const fs::path base = dir.path() / "journal.wal";
  Result<std::unique_ptr<Journal>> wrong = Journal::open(base, 0, 2);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().to_string().find("shard stamp mismatch"),
            std::string::npos);
  EXPECT_FALSE(Journal::open(base, 1, kShards).ok());
  EXPECT_FALSE(Journal::open(base).ok());
  EXPECT_FALSE(
      core::recover_metadata(dir.path() / "metadata.bin", base).ok());
  // The right shape re-opens fine.
  EXPECT_TRUE(Journal::open(base, 0, kShards).ok());
}

TEST(ShardStampTest, OneShardPlaneStaysLegacyCompatible) {
  TempDir dir;
  const fs::path jpath = dir.path() / "journal.wal";
  {
    // Written through the plane path with shard_count 1...
    std::shared_ptr<MetadataPlane> plane = open_plane(dir.path(), 1);
    JournalRecord rec;
    rec.op = JournalOp::kRegisterClient;
    rec.client = "alice";
    ASSERT_TRUE(plane->journal(0)->append(rec).ok());
  }
  // ...the image is the v3 unsharded format, at the unsharded path.
  Result<core::JournalShardInfo> info = core::probe_journal_shard(jpath);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, 3u);
  EXPECT_EQ(info.value().shard_count, 1u);
  // Legacy open and plane-shaped open both accept it.
  EXPECT_TRUE(Journal::open(jpath).ok());
  Result<core::RecoveredState> legacy =
      core::recover_metadata(dir.path() / "metadata.bin", jpath);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().replayed_records, 1u);
}

// --- parallel plane recovery ------------------------------------------------

TEST(PlaneRecoveryTest, RoundTripsAcrossRestart) {
  TempDir dir;
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  std::map<std::string, Bytes> want;
  {
    core::DistributorConfig config = base_config(0xCAFE);
    config.plane = open_plane(dir.path(), kShards);
    core::CloudDataDistributor cdd(registry, config);
    ASSERT_TRUE(cdd.register_client("alice").ok());
    ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kModerate).ok());
    for (int f = 0; f < 8; ++f) {
      const std::string file = "doc" + std::to_string(f);
      Bytes data = payload_of(2500 + 333 * f, f);
      ASSERT_TRUE(cdd.put_file("alice", "pw", file, data, opts).ok());
      want[file] = std::move(data);
    }
    // One shard checkpoints, the others keep journal-only state -- restart
    // must fold both paths.
    ASSERT_TRUE(cdd.checkpoint().ok());
    Bytes extra = payload_of(4000, 99);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "late", extra, opts).ok());
    want["late"] = std::move(extra);
  }
  Result<core::PlaneRecovery> rec = core::recover_plane(
      dir.path() / "metadata.bin", dir.path() / "journal.wal", kShards);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  ASSERT_EQ(rec.value().shards.size(), kShards);
  EXPECT_TRUE(rec.value().in_flight.empty());

  std::vector<std::shared_ptr<core::MetadataStore>> stores;
  stores.reserve(kShards);
  for (auto& s : rec.value().shards) stores.push_back(s.metadata);
  core::DistributorConfig config = base_config(0xCAFE + 1);
  config.plane = open_plane(dir.path(), kShards, std::move(stores));
  core::CloudDataDistributor cdd(registry, config);
  for (const auto& [file, data] : want) {
    Result<Bytes> got = cdd.get_file("alice", "pw", file);
    ASSERT_TRUE(got.ok()) << file << ": " << got.status().to_string();
    EXPECT_TRUE(equal(got.value(), data)) << file;
  }
}

TEST(PlaneRecoveryTest, RejectsMismatchedShardCount) {
  TempDir dir;
  { (void)open_plane(dir.path(), kShards); }
  Result<core::PlaneRecovery> wrong = core::recover_plane(
      dir.path() / "metadata.bin", dir.path() / "journal.wal", 2);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().to_string().find("shard"), std::string::npos);
  EXPECT_TRUE(core::recover_plane(dir.path() / "metadata.bin",
                                  dir.path() / "journal.wal", kShards)
                  .ok());
}

// --- 4-shard crash-injection sweep ------------------------------------------

/// Durable state of the whole plane at one crash point.
struct PlaneScenario {
  std::string label;
  std::array<Bytes, kShards> journals;
  std::array<Bytes, kShards> checkpoints;
  std::vector<std::map<VirtualId, Bytes>> providers;
  std::map<std::string, Bytes> expected;  ///< surely-committed file -> bytes
  /// Files whose put/update had begun but whose commit had not yet been
  /// confirmed when the snapshot was cut (concurrent sweep only): recovery
  /// may keep the new content, keep the old, or drop an unfinished put --
  /// but must never return torn bytes.
  std::map<std::string, std::vector<Bytes>> indeterminate;
};

/// Captures every per-shard append boundary of a live plane (and which
/// shard's journal took the record), mirroring recovery_test's
/// CrashRecorder across N journals.
class PlaneCrashRecorder {
 public:
  PlaneCrashRecorder(fs::path dir, storage::ProviderRegistry* registry)
      : dir_(std::move(dir)), registry_(registry) {}

  void install(MetadataPlane& plane) {
    for (std::size_t k = 0; k < plane.shard_count(); ++k) {
      plane.journal(k)->test_hook_before_append =
          [this, k](const JournalRecord& rec) {
            std::lock_guard<std::mutex> lock(mu_);
            pending_ = snapshot_locked(
                "before #" + std::to_string(scenarios_.size()) + " shard " +
                std::to_string(k) +
                " op=" + std::to_string(static_cast<int>(rec.op)));
            scenarios_.push_back(pending_);
          };
      plane.journal(k)->test_hook_after_append =
          [this, k](const JournalRecord& rec) {
            std::lock_guard<std::mutex> lock(mu_);
            advance_expected(rec);
            PlaneScenario after = snapshot_locked(
                "after #" + std::to_string(scenarios_.size()) + " shard " +
                std::to_string(k) +
                " op=" + std::to_string(static_cast<int>(rec.op)));
            scenarios_.push_back(std::move(after));
          };
    }
  }

  void will_write(const std::string& file, Bytes content) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_content_[file] = std::move(content);
  }

  [[nodiscard]] const std::vector<PlaneScenario>& scenarios() const {
    return scenarios_;
  }

 private:
  PlaneScenario snapshot_locked(std::string label) {
    PlaneScenario s;
    s.label = std::move(label);
    for (std::size_t k = 0; k < kShards; ++k) {
      s.journals[k] =
          read_disk(core::shard_file_path(dir_ / "journal.wal", k));
      s.checkpoints[k] =
          read_disk(core::shard_file_path(dir_ / "metadata.bin", k));
    }
    s.providers.resize(registry_->size());
    for (std::size_t p = 0; p < registry_->size(); ++p) {
      const storage::MemoryStore& store = registry_->at(p).raw_store();
      for (VirtualId id : store.list_ids()) {
        Result<Bytes> obj = store.get(id);
        if (obj.ok()) s.providers[p][id] = std::move(obj).value();
      }
    }
    s.expected = expected_;
    return s;
  }

  void advance_expected(const JournalRecord& rec) {
    switch (rec.op) {
      case JournalOp::kCommitPut:
      case JournalOp::kUpdateChunk: {
        if (rec.filename.empty()) break;
        auto it = pending_content_.find(rec.filename);
        if (it != pending_content_.end()) expected_[rec.filename] = it->second;
        break;
      }
      case JournalOp::kRemoveFile:
        expected_.erase(rec.filename);
        break;
      default:
        break;
    }
  }

  fs::path dir_;
  storage::ProviderRegistry* registry_;
  std::mutex mu_;
  std::map<std::string, Bytes> pending_content_;
  std::map<std::string, Bytes> expected_;
  PlaneScenario pending_;
  std::vector<PlaneScenario> scenarios_;
};

/// Reconstructs a plane from a crash PlaneScenario and asserts full
/// convergence: parallel recovery succeeds, committed files read back
/// byte-identical, uncommitted files are gone (or, in the concurrent
/// sweep, resolve to exactly one of their candidate states), reconcile
/// leaves zero unreferenced provider objects, and a second pass is a
/// no-op.
void verify_plane_recovery(const PlaneScenario& sc,
                           const std::set<std::string>& universe) {
  SCOPED_TRACE(sc.label);
  TempDir dir;
  for (std::size_t k = 0; k < kShards; ++k) {
    if (!sc.journals[k].empty()) {
      write_disk(core::shard_file_path(dir.path() / "journal.wal", k),
                 sc.journals[k]);
    }
    if (!sc.checkpoints[k].empty()) {
      write_disk(core::shard_file_path(dir.path() / "metadata.bin", k),
                 sc.checkpoints[k]);
    }
  }
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  for (std::size_t p = 0; p < sc.providers.size(); ++p) {
    for (const auto& [id, bytes] : sc.providers[p]) {
      ASSERT_TRUE(registry.at(p).put(id, bytes).ok());
    }
  }

  Result<core::PlaneRecovery> recovered = core::recover_plane(
      dir.path() / "metadata.bin", dir.path() / "journal.wal", kShards);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();

  std::vector<std::shared_ptr<core::MetadataStore>> stores;
  stores.reserve(kShards);
  for (auto& s : recovered.value().shards) stores.push_back(s.metadata);
  core::DistributorConfig config = base_config(0xFE11BACC);
  config.plane = open_plane(dir.path(), kShards, std::move(stores));
  core::CloudDataDistributor cdd(registry, config);
  Result<core::CloudDataDistributor::ReconcileReport> report =
      cdd.reconcile(recovered.value().in_flight);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  for (const std::string& file : universe) {
    Result<Bytes> got = cdd.get_file("alice", "pw", file);
    auto want = sc.expected.find(file);
    if (want != sc.expected.end()) {
      ASSERT_TRUE(got.ok()) << file << ": " << got.status().to_string();
      EXPECT_TRUE(equal(got.value(), want->second)) << file;
    } else if (auto maybe = sc.indeterminate.find(file);
               maybe != sc.indeterminate.end()) {
      if (got.ok()) {
        bool matched = false;
        for (const Bytes& candidate : maybe->second) {
          if (equal(got.value(), candidate)) matched = true;
        }
        EXPECT_TRUE(matched) << file << " recovered to torn bytes";
      }
    } else {
      EXPECT_FALSE(got.ok()) << file << " should not have survived";
    }
  }

  // Zero orphans, plane-wide: the referenced set is the union over every
  // partition's chunk table.
  std::set<std::pair<ProviderIndex, VirtualId>> referenced;
  const MetadataPlane& plane = *cdd.plane();
  for (std::size_t s = 0; s < plane.shard_count(); ++s) {
    for (const core::ChunkEntry& entry : plane.store(s).chunk_table()) {
      if (entry.deleted) continue;
      for (const core::ShardLocation& loc : entry.stripe) {
        referenced.insert({loc.provider, loc.virtual_id});
      }
      for (const core::ShardLocation& loc : entry.snapshot) {
        referenced.insert({loc.provider, loc.virtual_id});
      }
    }
  }
  for (std::size_t p = 0; p < registry.size(); ++p) {
    for (VirtualId id : registry.at(p).list_ids()) {
      EXPECT_TRUE(referenced.count({static_cast<ProviderIndex>(p), id}))
          << "orphan object " << id << " at provider " << p;
    }
  }

  // Idempotence: recovering the recovered world is a no-op.
  Result<core::PlaneRecovery> second = core::recover_plane(
      dir.path() / "metadata.bin", dir.path() / "journal.wal", kShards);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().in_flight.empty());
  Result<core::CloudDataDistributor::ReconcileReport> again =
      cdd.reconcile(second.value().in_flight);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().orphans_removed, 0u);
  EXPECT_EQ(again.value().stale_ids, 0u);
  EXPECT_EQ(again.value().aborted_files, 0u);
}

TEST(ShardPlaneCrashTest, SweepEveryAppendBoundary) {
  TempDir dir;
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  PlaneCrashRecorder recorder(dir.path(), &registry);

  const Bytes f1 = payload_of(9000, 1);
  const Bytes f2 = payload_of(5000, 2);
  const Bytes f3 = payload_of(7000, 3);
  const std::set<std::string> universe = {"f1", "f2", "f3"};
  Bytes f1_updated;

  {
    core::DistributorConfig config = base_config(0x5EED);
    config.plane = open_plane(dir.path(), kShards);
    recorder.install(*config.plane);
    core::CloudDataDistributor cdd(registry, config);

    ASSERT_TRUE(cdd.register_client("alice").ok());
    ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kModerate).ok());
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;

    recorder.will_write("f1", f1);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f1", f1, opts).ok());
    recorder.will_write("f2", f2);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f2", f2, opts).ok());
    recorder.will_write("f3", f3);
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f3", f3, opts).ok());

    Result<Bytes> chunk0 = cdd.get_chunk("alice", "pw", "f1", 0);
    ASSERT_TRUE(chunk0.ok());
    const std::size_t span = chunk0.value().size();
    ASSERT_GT(span, 0u);
    ASSERT_LT(span, f1.size());
    const Bytes fresh = payload_of(span, 11);
    f1_updated = fresh;
    f1_updated.insert(f1_updated.end(), f1.begin() + span, f1.end());
    recorder.will_write("f1", f1_updated);
    ASSERT_TRUE(cdd.update_chunk("alice", "pw", "f1", 0, fresh).ok());

    ASSERT_TRUE(cdd.remove_file("alice", "pw", "f2").ok());

    Result<Bytes> live_f1 = cdd.get_file("alice", "pw", "f1");
    ASSERT_TRUE(live_f1.ok());
    ASSERT_TRUE(equal(live_f1.value(), f1_updated));
  }

  // Every append boundary on every shard, captured before and after: the
  // provider-broadcast fan-out (12 providers x 4 journals from the ctor)
  // plus client broadcasts plus the per-file records on their owning
  // shards. The sweep must hold at each one.
  const std::vector<PlaneScenario>& scenarios = recorder.scenarios();
  // ctor broadcast 12*4 + client/password broadcast 2*4 + 3 puts
  // (begin+commit) + update + remove = 64 appends, before+after each.
  ASSERT_EQ(scenarios.size(), 128u);
  for (const PlaneScenario& sc : scenarios) {
    verify_plane_recovery(sc, universe);
  }

  // Torn-tail variants: a crash mid-frame on ONE shard's journal while the
  // other shards are intact -- the torn shard truncates its partial record
  // and the plane must still converge.
  std::size_t torn_checked = 0;
  for (std::size_t i = 0; i + 1 < scenarios.size() && torn_checked < 16;
       i += 2) {
    const PlaneScenario& before = scenarios[i];
    const PlaneScenario& after = scenarios[i + 1];
    for (std::size_t k = 0; k < kShards && torn_checked < 16; ++k) {
      if (after.journals[k].size() <= before.journals[k].size()) continue;
      const std::size_t frame =
          after.journals[k].size() - before.journals[k].size();
      for (std::size_t cut : {std::size_t{1}, frame / 2, frame - 1}) {
        if (cut == 0 || cut >= frame) continue;
        PlaneScenario torn = before;
        torn.label = before.label + " shard " + std::to_string(k) + " torn+" +
                     std::to_string(cut);
        torn.journals[k].insert(
            torn.journals[k].end(),
            after.journals[k].begin() + before.journals[k].size(),
            after.journals[k].begin() + before.journals[k].size() + cut);
        verify_plane_recovery(torn, universe);
        ++torn_checked;
      }
    }
  }
  EXPECT_GE(torn_checked, 9u);
}

TEST(ShardPlaneCrashTest, ConcurrentAppendsToDifferentShards) {
  TempDir dir;
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kFilesPerWriter = 4;
  std::set<std::string> universe;
  std::map<std::string, Bytes> contents;
  for (std::size_t t = 0; t < kWriters; ++t) {
    for (std::size_t f = 0; f < kFilesPerWriter; ++f) {
      const std::string name =
          "w" + std::to_string(t) + "_" + std::to_string(f);
      universe.insert(name);
      contents[name] = payload_of(2000 + 97 * f, 1000 * t + f);
    }
  }

  // Sampled snapshots while 4 writers append to their owning shards
  // concurrently: each captured instant is a plausible whole-plane crash
  // state with different shards mid-record. Committed-set tracking is
  // confirmed only after put_file returns, so `expected` is a lower bound
  // and everything begun-but-unconfirmed verifies as indeterminate.
  std::mutex mu;
  std::vector<PlaneScenario> scenarios;
  std::map<std::string, Bytes> committed;
  std::set<std::string> begun;
  std::atomic<std::uint64_t> appends{0};

  core::DistributorConfig config = base_config(0xC0FFEE);
  config.plane = open_plane(dir.path(), kShards);
  MetadataPlane& plane = *config.plane;
  core::CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kModerate).ok());

  auto snapshot = [&](const std::string& label) {
    // mu_ held by caller. Reading another shard's journal while its owner
    // appends is exactly what a crash exposes: a possibly-torn tail the
    // recovery path must absorb.
    PlaneScenario s;
    s.label = label;
    for (std::size_t k = 0; k < kShards; ++k) {
      s.journals[k] =
          read_disk(core::shard_file_path(dir.path() / "journal.wal", k));
      s.checkpoints[k] =
          read_disk(core::shard_file_path(dir.path() / "metadata.bin", k));
    }
    s.providers.resize(registry.size());
    for (std::size_t p = 0; p < registry.size(); ++p) {
      const storage::MemoryStore& store = registry.at(p).raw_store();
      for (VirtualId id : store.list_ids()) {
        Result<Bytes> obj = store.get(id);
        if (obj.ok()) s.providers[p][id] = std::move(obj).value();
      }
    }
    s.expected = committed;
    for (const std::string& file : begun) {
      if (s.expected.count(file)) continue;
      s.indeterminate[file].push_back(contents[file]);
    }
    return s;
  };
  for (std::size_t k = 0; k < kShards; ++k) {
    plane.journal(k)->test_hook_before_append =
        [&, k](const JournalRecord&) {
          const std::uint64_t n =
              appends.fetch_add(1, std::memory_order_relaxed);
          if (n % 7 != 3) return;  // sample ~1/7 of the boundaries
          std::lock_guard<std::mutex> lock(mu);
          scenarios.push_back(snapshot(
              "concurrent #" + std::to_string(n) + " at shard " +
              std::to_string(k)));
        };
  }

  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t f = 0; f < kFilesPerWriter; ++f) {
        const std::string name =
            "w" + std::to_string(t) + "_" + std::to_string(f);
        {
          std::lock_guard<std::mutex> lock(mu);
          begun.insert(name);
        }
        ASSERT_TRUE(
            cdd.put_file("alice", "pw", name, contents[name], opts).ok());
        std::lock_guard<std::mutex> lock(mu);
        committed[name] = contents[name];
      }
    });
  }
  for (std::thread& th : writers) th.join();

  ASSERT_GE(scenarios.size(), 4u);
  for (const PlaneScenario& sc : scenarios) {
    verify_plane_recovery(sc, universe);
  }
  // The finished world also recovers exactly.
  std::lock_guard<std::mutex> lock(mu);
  PlaneScenario final_state = snapshot("after all writers");
  EXPECT_EQ(final_state.expected.size(), kWriters * kFilesPerWriter);
  verify_plane_recovery(final_state, universe);
}

// --- TSan hammer ------------------------------------------------------------

// 8 front-ends x 64 clients of mixed put/get/update, every op crossing
// shard boundaries through the shared plane. Run under
// -DCSHIELD_SANITIZE=thread in CI; here it also asserts correctness.
TEST(ShardPlaneHammerTest, MixedOpsAcrossFrontEndsAndShards) {
  storage::ProviderRegistry registry =
      storage::make_default_registry(kProviders);
  core::DistributorGroup group(registry, base_config(0x4A33), 8, kShards);

  constexpr std::size_t kClients = 64;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  std::atomic<std::size_t> failures{0};
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      const std::string client = "hammer" + std::to_string(t);
      auto check = [&](bool ok) {
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      };
      check(group.register_client(client).ok());
      check(group.add_password(client, "pw", PrivacyLevel::kModerate).ok());
      core::PutOptions opts;
      opts.privacy_level = PrivacyLevel::kModerate;
      const Bytes a = payload_of(2048, 2 * t);
      const Bytes b = payload_of(3072, 2 * t + 1);
      check(group.put_file(client, "pw", "a", a, opts).ok());
      check(group.put_file(client, "pw", "b", b, opts).ok());
      Result<Bytes> got = group.get_file(client, "pw", "a");
      check(got.ok() && equal(got.value(), a));
      Result<Bytes> chunk = group.get_chunk(client, "pw", "b", 0);
      if (chunk.ok() && !chunk.value().empty() &&
          chunk.value().size() < b.size()) {
        const Bytes fresh = payload_of(chunk.value().size(), 9000 + t);
        check(group.update_chunk(client, "pw", "b", 0, fresh).ok());
        Bytes expected = fresh;
        expected.insert(expected.end(), b.begin() + fresh.size(), b.end());
        Result<Bytes> after = group.get_file(client, "pw", "b");
        check(after.ok() && equal(after.value(), expected));
      } else {
        check(chunk.ok());
      }
      check(group.remove_file(client, "pw", "a").ok());
      check(!group.get_file(client, "pw", "a").ok());
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  // Every client's surviving file is intact and the namespace is really
  // spread over the partitions.
  for (std::size_t t = 0; t < kClients; ++t) {
    Result<std::vector<core::CloudDataDistributor::FileInfo>> files =
        group.list_files("hammer" + std::to_string(t), "pw");
    ASSERT_TRUE(files.ok());
    EXPECT_EQ(files.value().size(), 1u);
  }
  std::size_t populated = 0;
  for (std::size_t s = 0; s < group.plane()->shard_count(); ++s) {
    if (group.plane()->store(s).total_chunks() > 0) ++populated;
  }
  EXPECT_GT(populated, 1u);
}

}  // namespace
}  // namespace cshield

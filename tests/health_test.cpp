// Ops-plane tests: the metrics exporter's sample ring and windowed views,
// Prometheus exposition format (promtool-style line validation), the stall
// watchdog's one-shot diagnostic, and the rolling SLO/health engine --
// including the acceptance scenario: a deterministic FaultPlan outage whose
// exact health-transition sequence (healthy -> degraded -> critical ->
// degraded -> healthy) is asserted transition by transition.
//
// The chaos scenario reuses chaos_test.cpp's replay harness (single-
// threaded pools, pipelined engine, fixed seeds) so the breaker walk --
// trip, rejections, failed probes, healing probe -- is a pure function of
// the read count, and the engine's transition log replays byte-for-byte.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/distributor.hpp"
#include "obs/exporter.hpp"
#include "obs/health.hpp"
#include "obs/process.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"

namespace cshield {
namespace {

namespace fs = std::filesystem;

using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;
using obs::HealthEngine;
using obs::HealthReport;
using obs::HealthState;
using obs::MetricsExporter;
using obs::SloPolicy;
using obs::SloStatus;
using obs::StallWatchdog;
using obs::Telemetry;
using storage::CircuitBreaker;
using storage::FaultEpisode;
using storage::FaultKind;
using storage::FaultPlan;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("cshield_health_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

storage::ProviderRegistry flat_registry(std::size_t n) {
  storage::ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    storage::ProviderDescriptor d;
    d.name = "P" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = static_cast<CostLevel>(i % 4);
    registry.add(std::move(d), storage::LatencyModel{}, 0xBEEF0000ULL + i);
  }
  return registry;
}

DistributorConfig replay_config(std::shared_ptr<Telemetry> sink) {
  DistributorConfig config;
  config.stripe_data_shards = 3;
  config.worker_threads = 1;
  config.io_threads = 1;
  config.pipelined = true;
  config.telemetry = true;
  config.telemetry_sink = std::move(sink);
  config.seed = 0xC405;
  return config;
}

MetricsExporter::Config window_config(std::size_t window) {
  MetricsExporter::Config cfg;
  cfg.window = window;
  return cfg;
}

const SloStatus& slo_named(const HealthReport& report, const std::string& n) {
  for (const SloStatus& s : report.slos) {
    if (s.name == n) return s;
  }
  ADD_FAILURE() << "missing SLO " << n;
  static const SloStatus empty;
  return empty;
}

// --- exporter: ring / deltas / windows ---------------------------------------

TEST(ExporterTest, RingIsBoundedAndOrdered) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter exp(tel, window_config(4));
  obs::Counter& c = tel->metrics().counter("work.items");
  for (int i = 0; i < 10; ++i) {
    c.inc();
    exp.sample_now();
  }
  EXPECT_EQ(exp.samples(), 4u);
  EXPECT_EQ(exp.total_samples(), 10u);
  const std::vector<MetricsExporter::Sample> ring = exp.ring();
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_GE(ring[i].t_ns, ring[i - 1].t_ns) << "oldest first";
    EXPECT_GE(ring[i].snap.counters.at("work.items"),
              ring[i - 1].snap.counters.at("work.items"));
  }
  EXPECT_EQ(ring.back().snap.counters.at("work.items"), 10u);
}

TEST(ExporterTest, CounterDeltaRateAndLatestValues) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter exp(tel, window_config(8));
  tel->metrics().counter("work.items").inc(3);
  exp.sample_now();
  tel->metrics().counter("work.items").inc(5);
  tel->metrics().gauge("work.depth").set(-7);
  exp.sample_now();
  EXPECT_EQ(exp.counter_delta("work.items"), 5u);
  EXPECT_GT(exp.counter_rate_per_sec("work.items"), 0.0);
  ASSERT_TRUE(exp.counter_last("work.items").has_value());
  EXPECT_EQ(*exp.counter_last("work.items"), 8u);
  ASSERT_TRUE(exp.gauge_last("work.depth").has_value());
  EXPECT_EQ(*exp.gauge_last("work.depth"), -7);
  // Absent metrics: zero delta, empty latest.
  EXPECT_EQ(exp.counter_delta("no.such"), 0u);
  EXPECT_FALSE(exp.counter_last("no.such").has_value());
  EXPECT_FALSE(exp.gauge_last("no.such").has_value());
}

TEST(ExporterTest, HistogramWindowCountsOnlyNewObservations) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter exp(tel, window_config(8));
  obs::Histogram& h = tel->metrics().histogram("op.ns");
  for (int i = 0; i < 10; ++i) h.observe(100);
  exp.sample_now();
  EXPECT_FALSE(exp.histogram_window("no.such").has_value());
  for (int i = 0; i < 5; ++i) h.observe(900);
  exp.sample_now();
  const auto w = exp.histogram_window("op.ns");
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->count, 5u);   // the 10 pre-window observations subtracted
  EXPECT_EQ(w->sum, 4500.0);
  EXPECT_GT(w->percentile(0.99), 100.0);  // window p99 sees only the 900s
}

TEST(ExporterTest, ZeroCostWhenTelemetryDisabled) {
  auto tel = std::make_shared<Telemetry>(false);
  MetricsExporter exp(tel, window_config(4));
  exp.sample_now();
  exp.sample_now();
  EXPECT_EQ(exp.samples(), 0u);
  EXPECT_EQ(exp.total_samples(), 0u);
  EXPECT_NE(exp.to_prometheus().find("telemetry=\"off\""), std::string::npos);
}

TEST(ExporterTest, JsonlStreamAppendsOneLinePerSample) {
  TempDir dir;
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter::Config cfg = window_config(8);
  cfg.jsonl_path = (dir.path() / "samples.jsonl").string();
  MetricsExporter exp(tel, cfg);
  tel->metrics().counter("work.items").inc();
  exp.sample_now();
  tel->metrics().counter("work.items").inc();
  exp.sample_now();

  std::ifstream in(cfg.jsonl_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  const std::regex shape(
      R"(^\{"t_ns":[0-9]+,"counters":\{.*\},"gauges":\{.*\},"histograms":\{.*\}\}$)");
  for (const std::string& line : lines) {
    EXPECT_TRUE(std::regex_match(line, shape)) << line;
  }
  EXPECT_NE(lines[0].find("\"work.items\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"work.items\":2"), std::string::npos);
}

TEST(ExporterTest, BackgroundSamplerTicksAndStops) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter::Config cfg = window_config(64);
  cfg.interval = std::chrono::milliseconds(1);
  MetricsExporter exp(tel, cfg);
  exp.start();
  EXPECT_TRUE(exp.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (exp.total_samples() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  exp.stop();
  EXPECT_FALSE(exp.running());
  EXPECT_GE(exp.total_samples(), 3u);
  const std::uint64_t after_stop = exp.total_samples();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(exp.total_samples(), after_stop);
  // The sampler refreshed the process gauges along the way.
  ASSERT_TRUE(exp.gauge_last("process.telemetry_enabled").has_value());
  EXPECT_EQ(*exp.gauge_last("process.telemetry_enabled"), 1);
}

// Snapshot-delta consistency with metric writers racing the sampler: both a
// background sampler thread and a foreground sample_now() caller walk the
// registry while writer threads hammer it. Run under TSan in ci.sh.
TEST(ExporterTest, ConcurrentWritersYieldConsistentSnapshots) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter::Config cfg = window_config(16);
  cfg.interval = std::chrono::milliseconds(1);
  MetricsExporter exp(tel, cfg);
  exp.start();

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tel, w] {
      obs::Counter& ops = tel->metrics().counter("hammer.ops");
      obs::Gauge& depth = tel->metrics().gauge("hammer.depth");
      obs::Histogram& lat = tel->metrics().histogram("hammer.ns");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ops.inc();
        depth.set(i);
        lat.observe(static_cast<double>((w + 1) * 100));
      }
    });
  }
  for (int i = 0; i < 50; ++i) exp.sample_now();
  for (std::thread& t : writers) t.join();
  exp.stop();
  exp.sample_now();  // final sample sees every writer's last increment

  ASSERT_TRUE(exp.counter_last("hammer.ops").has_value());
  EXPECT_EQ(*exp.counter_last("hammer.ops"),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  const std::vector<MetricsExporter::Sample> ring = exp.ring();
  for (std::size_t i = 1; i < ring.size(); ++i) {
    auto prev = ring[i - 1].snap.counters.find("hammer.ops");
    auto next = ring[i].snap.counters.find("hammer.ops");
    if (prev == ring[i - 1].snap.counters.end() ||
        next == ring[i].snap.counters.end()) {
      continue;
    }
    EXPECT_LE(prev->second, next->second) << "counter went backwards";
  }
  EXPECT_LE(exp.counter_delta("hammer.ops"),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

// --- Prometheus exposition ---------------------------------------------------

// Promtool-style validation: every line of the exposition is either a
// `# TYPE` declaration or a `name{labels} value` sample.
TEST(PrometheusFormatTest, ExpositionIsWellFormedLineByLine) {
  auto tel = std::make_shared<Telemetry>(true);
  tel->metrics().counter("cdd.put_file_total").inc(3);
  tel->metrics().gauge("rt.open_breakers").set(-1);
  obs::Histogram& h = tel->metrics().histogram("cdd.put_file_wall_ns");
  h.observe(1.5e6);
  h.observe(3.2e9);
  MetricsExporter exp(tel, window_config(4));

  const std::string text = exp.to_prometheus();
  const std::regex type_line(
      R"(^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$)");
  const std::regex sample_line(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$)");
  std::istringstream in(text);
  std::size_t checked = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    EXPECT_TRUE(std::regex_match(line, type_line) ||
                std::regex_match(line, sample_line))
        << "malformed exposition line: " << line;
    ++checked;
  }
  EXPECT_GT(checked, 10u);

  // Golden fragments: build info with labels, sanitized metric names,
  // cumulative histogram buckets with an +Inf bound, process gauges.
  EXPECT_NE(text.find("# TYPE cshield_build_info gauge"), std::string::npos);
  const std::regex build_info(
      R"(cshield_build_info\{arch="[^"]+",kernel_arm="[^"]+",telemetry="on"\} 1)");
  EXPECT_TRUE(std::regex_search(text, build_info)) << text.substr(0, 200);
  EXPECT_NE(text.find("cdd_put_file_total 3"), std::string::npos);
  EXPECT_NE(text.find("rt_open_breakers -1"), std::string::npos);
  EXPECT_NE(text.find("cdd_put_file_wall_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cdd_put_file_wall_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("process_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("process_telemetry_enabled 1"), std::string::npos);
  // Sanitized: no dotted metric names escape into the exposition.
  std::istringstream again(text);
  for (std::string line; std::getline(again, line);) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_EQ(line.substr(0, name_end).find('.'), std::string::npos) << line;
  }
}

// --- stall watchdog ----------------------------------------------------------

TEST(WatchdogTest, ArmedRaiiTracksInflightTable) {
  auto tel = std::make_shared<Telemetry>(true);
  StallWatchdog wd(tel);
  {
    StallWatchdog::Armed a(&wd, "op_a", 0);
    StallWatchdog::Armed b(&wd, "op_b", 1'000'000);
    EXPECT_EQ(wd.inflight(), 2u);
    EXPECT_EQ(tel->metrics().gauge("watchdog.inflight_ops").value(), 2);
    StallWatchdog::Armed moved(std::move(a));
    EXPECT_EQ(wd.inflight(), 2u);  // move transfers, does not disarm
  }
  EXPECT_EQ(wd.inflight(), 0u);
  EXPECT_EQ(tel->metrics().gauge("watchdog.inflight_ops").value(), 0);
}

TEST(WatchdogTest, InertWhenTelemetryDisabledOrNull) {
  auto off = std::make_shared<Telemetry>(false);
  StallWatchdog wd_off(off);
  EXPECT_EQ(wd_off.arm("op", 1), 0u);
  EXPECT_EQ(wd_off.inflight(), 0u);
  EXPECT_EQ(wd_off.poll(), 0u);

  StallWatchdog wd_null(nullptr);
  EXPECT_EQ(wd_null.arm("op", 1), 0u);
  EXPECT_EQ(wd_null.poll(), 0u);
  wd_null.disarm(0);  // safe no-op
}

TEST(WatchdogTest, StallFiresOneShotDiagnosticDump) {
  TempDir dir;
  auto tel = std::make_shared<Telemetry>(true);
  StallWatchdog::Config cfg;
  cfg.deadline_multiple = 1.0;
  cfg.fsync_stall = std::chrono::nanoseconds(1);
  cfg.dump_path = (dir.path() / "dump.txt").string();
  StallWatchdog wd(tel, cfg);
  wd.set_context_fn([] { return std::string("breaker P0: closed\n"); });

  // One retained span so the dump's trace section has something to show.
  obs::SpanRecord span;
  span.op_id = tel->tracer().next_id();
  span.span_id = tel->tracer().next_id();
  span.name = "wedged_put";
  tel->tracer().record(std::move(span));

  const std::uint64_t ok_token = wd.arm("fast_op", 0);  // no deadline: never stalls
  const std::uint64_t token = wd.arm("wedged_put", 1);  // 1 ns deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  wd.fsync_begin();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  EXPECT_FALSE(wd.fired());
  EXPECT_EQ(wd.poll(), 2u);  // the wedged op + the stuck fsync
  EXPECT_TRUE(wd.fired());
  EXPECT_EQ(tel->metrics().counter("watchdog.stalls").value(), 1u);
  EXPECT_EQ(tel->metrics().counter("watchdog.fsync_stalls").value(), 1u);

  const std::string report = wd.last_report();
  EXPECT_NE(report.find("stalled operations"), std::string::npos);
  EXPECT_NE(report.find("'wedged_put'"), std::string::npos);
  EXPECT_NE(report.find("journal fsync window open"), std::string::npos);
  EXPECT_NE(report.find("breaker P0: closed"), std::string::npos);
  EXPECT_NE(report.find("--- metrics ---"), std::string::npos);
  EXPECT_NE(report.find("watchdog_inflight_ops"), std::string::npos);
  EXPECT_NE(report.find("--- recent spans ---"), std::string::npos);
  EXPECT_NE(report.find("\"name\":\"wedged_put\""), std::string::npos);
  std::ifstream in(cfg.dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_EQ(file.str(), report);

  // One-shot: the next poll counts the same stalls but keeps the first dump.
  EXPECT_EQ(wd.poll(), 2u);
  EXPECT_EQ(tel->metrics().counter("watchdog.stalls").value(), 2u);
  EXPECT_EQ(wd.last_report(), report);

  // Dumped spans are exported -- overwriting them later is not a drop.
  EXPECT_EQ(tel->tracer().dropped_spans(), 0u);

  wd.disarm(token);
  wd.disarm(ok_token);
  wd.fsync_end();
  EXPECT_EQ(wd.poll(), 0u);
  EXPECT_EQ(wd.inflight(), 0u);
}

// --- health engine: synthetic SLO states -------------------------------------

TEST(HealthEngineTest, EmptyRingReportsHealthyNothing) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter exp(tel, window_config(4));
  HealthEngine engine(exp);
  const HealthReport report = engine.evaluate();
  EXPECT_EQ(report.overall, HealthState::kHealthy);
  EXPECT_TRUE(report.providers.empty());
  EXPECT_TRUE(report.slos.empty());
  EXPECT_EQ(report.window_samples, 0u);
}

TEST(HealthEngineTest, SyntheticSignalsDriveSloStates) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter exp(tel, window_config(4));
  HealthEngine engine(exp);
  obs::MetricsRegistry& m = tel->metrics();
  m.counter("provider.AWS.requests");  // discovered even before traffic
  exp.sample_now();

  // Window activity: 10% op failure rate, a 10%-error provider, four open
  // breakers, one scrub mismatch in 100 chunks.
  m.counter("cdd.op_total").inc(90);
  m.counter("cdd.op_errors").inc(10);
  m.counter("provider.AWS.requests").inc(10);
  m.counter("provider.AWS.errors").inc(1);
  m.gauge("rt.open_breakers").set(4);
  m.counter("scrub.chunks_scanned").inc(100);
  m.counter("scrub.digest_mismatches").inc(1);
  exp.sample_now();

  const HealthReport report = engine.evaluate();
  EXPECT_EQ(report.window_samples, 2u);
  ASSERT_EQ(report.providers.size(), 1u);
  EXPECT_EQ(report.providers[0].name, "AWS");
  EXPECT_EQ(report.providers[0].state, HealthState::kDegraded);
  EXPECT_EQ(report.providers[0].window_requests, 10u);
  EXPECT_EQ(report.providers[0].window_errors, 1u);

  const SloStatus& avail = slo_named(report, "availability");
  EXPECT_EQ(avail.state, HealthState::kDegraded);  // 0.10: past 0.01, at cap
  EXPECT_DOUBLE_EQ(avail.value, 0.10);
  EXPECT_DOUBLE_EQ(avail.budget_spent, 10.0);  // 10x the 1% objective

  const SloStatus& breakers = slo_named(report, "breakers");
  EXPECT_EQ(breakers.state, HealthState::kCritical);  // 4 > 3
  EXPECT_DOUBLE_EQ(breakers.budget_spent, 1.0);  // zero-tolerance objective

  const SloStatus& scrub = slo_named(report, "scrub.integrity");
  EXPECT_EQ(scrub.state, HealthState::kDegraded);  // any mismatch degrades
  EXPECT_DOUBLE_EQ(scrub.value, 0.01);

  EXPECT_EQ(slo_named(report, "batcher.queue").state, HealthState::kHealthy);
  EXPECT_EQ(report.overall, HealthState::kCritical);
  EXPECT_EQ(tel->metrics().gauge("health.overall").value(),
            static_cast<std::int64_t>(HealthState::kCritical));
}

TEST(HealthEngineTest, BreakerStateGaugeIsAuthoritative) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter exp(tel, window_config(4));
  HealthEngine engine(exp);
  obs::MetricsRegistry& m = tel->metrics();
  m.counter("provider.AWS.requests").inc(5);
  m.gauge("provider.AWS.breaker_state").set(obs::kBreakerClosed);
  exp.sample_now();
  EXPECT_EQ(engine.evaluate().providers.at(0).state, HealthState::kHealthy);

  m.gauge("provider.AWS.breaker_state").set(obs::kBreakerOpen);
  exp.sample_now();
  EXPECT_EQ(engine.evaluate().providers.at(0).state, HealthState::kCritical);

  m.gauge("provider.AWS.breaker_state").set(obs::kBreakerHalfOpen);
  exp.sample_now();
  EXPECT_EQ(engine.evaluate().providers.at(0).state, HealthState::kDegraded);

  // First sighting is not a transition; the two later flips are.
  const auto trans = engine.transitions_of("provider:AWS");
  ASSERT_EQ(trans.size(), 2u);
  EXPECT_EQ(trans[0].from, HealthState::kHealthy);
  EXPECT_EQ(trans[0].to, HealthState::kCritical);
  EXPECT_EQ(trans[1].from, HealthState::kCritical);
  EXPECT_EQ(trans[1].to, HealthState::kDegraded);
  EXPECT_EQ(tel->metrics().counter("health.transitions").value(), 4u);
  // provider + overall each flipped twice; no SLO ever left healthy.
  EXPECT_EQ(engine.transitions_of("overall").size(), 2u);
  EXPECT_TRUE(engine.transitions_of("slo:availability").empty());
}

TEST(HealthEngineTest, LatencySloUsesWindowedP99AgainstTarget) {
  auto tel = std::make_shared<Telemetry>(true);
  MetricsExporter exp(tel, window_config(4));
  SloPolicy policy;
  policy.put_p99_target_ns = 100.0;
  policy.latency_critical_multiple = 2.0;
  HealthEngine engine(exp, policy);
  obs::Histogram& h = tel->metrics().histogram("cdd.put_file_wall_ns");
  // Old fast samples ride out of the window; only the slow tail counts.
  for (int i = 0; i < 100; ++i) h.observe(10.0);
  exp.sample_now();
  for (int i = 0; i < 20; ++i) h.observe(5000.0);
  exp.sample_now();
  const HealthReport report = engine.evaluate();
  const SloStatus& put = slo_named(report, "latency.put");
  EXPECT_EQ(put.state, HealthState::kCritical);  // p99 > 2x the 100ns target
  EXPECT_GT(put.value, 200.0);
  EXPECT_GT(put.budget_spent, 2.0);
  // A quiet histogram is a healthy one.
  EXPECT_EQ(slo_named(report, "latency.get").state, HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(slo_named(report, "latency.get").value, 0.0);
}

// --- the acceptance scenario -------------------------------------------------

// A scripted provider outage (deterministic FaultPlan, replay harness)
// must drive the victim provider through EXACTLY
//   healthy -> degraded -> critical -> degraded -> healthy
// as seen by the health engine:
//   degraded   first crash-window failure (error rate over threshold,
//              breaker still closed),
//   critical   second failure trips the breaker (gauge reads OPEN),
//   degraded   the healing probe closes the breaker while the failed
//              probe's error is still inside the rolling window,
//   healthy    the window drains.
TEST(HealthTransitionTest, ScriptedOutageWalksExactTransitionSequence) {
  auto sink = std::make_shared<Telemetry>(true);
  storage::ProviderRegistry registry = flat_registry(8);
  registry.set_breaker_config(CircuitBreaker::Config{3, 4});
  CloudDataDistributor cdd(registry, replay_config(sink));
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(800, 9);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(cdd.put_file("C", "pw", "f", data, opts).ok());

  const auto refs = cdd.metadata().file_chunks("C", "f");
  ASSERT_EQ(refs.size(), 1u) << "single chunk: one victim RPC per read";
  Result<core::ChunkEntry> entry =
      cdd.metadata().chunk_entry(refs.front().chunk_index);
  ASSERT_TRUE(entry.ok());
  const ProviderIndex victim = entry.value().stripe.front().provider;
  const std::string victim_subject =
      "provider:P" + std::to_string(static_cast<unsigned>(victim));

  // Window of 6 samples: after the heal, the failed probe's error is still
  // inside the window for one evaluation (the degraded tail), then drains.
  MetricsExporter exp(sink, window_config(6));
  HealthEngine engine(exp);

  // Baseline before the outage: every subject is sighted healthy.
  exp.sample_now();
  HealthReport baseline = engine.evaluate();
  EXPECT_EQ(baseline.overall, HealthState::kHealthy);
  EXPECT_EQ(baseline.providers.size(), 8u);

  // Two scripted episodes against the victim, in its request-sequence
  // space. A degraded read retries a missing data shard at full budget
  // (4 attempts), so:
  //   [0,2)  blip: read 0 fails twice, the third attempt lands -- errors
  //          in the window, breaker (threshold 3) still CLOSED: degraded.
  //   [3,7)  outage: read 1 fails three times running and trips the
  //          breaker OPEN: critical. Probe 1 (seq 6) fails, probe 2
  //          (seq 7) heals it -- degraded while the window still holds
  //          the probe failure, healthy once it drains.
  auto plan = std::make_shared<FaultPlan>();
  FaultEpisode blip;
  blip.provider = victim;
  blip.kind = FaultKind::kCrash;
  blip.begin = 0;
  blip.end = 2;
  plan->episodes.push_back(blip);
  FaultEpisode outage;
  outage.provider = victim;
  outage.kind = FaultKind::kCrash;
  outage.begin = 3;
  outage.end = 7;
  plan->episodes.push_back(outage);
  registry.apply_fault_plan(plan);  // also resets breaker state

  // 18 reads, sampling + evaluating after each: enough for the breaker to
  // trip (read 1), reject, probe in vain once, heal on the second probe,
  // and for the window to drain afterwards. Every read succeeds -- parity
  // covers the quarantined shard; only the health state moves.
  std::vector<HealthState> observed;
  for (int i = 0; i < 18; ++i) {
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    ASSERT_TRUE(back.ok()) << "read " << i << ": "
                           << back.status().to_string();
    exp.sample_now();
    const HealthReport report = engine.evaluate();
    for (const obs::ProviderHealth& p : report.providers) {
      if (p.name == "P" + std::to_string(static_cast<unsigned>(victim))) {
        if (observed.empty() || observed.back() != p.state) {
          observed.push_back(p.state);
        }
      }
    }
  }

  // The replayable breaker walk underneath: one trip, one failed probe
  // (crash window still open), one healing probe.
  EXPECT_EQ(sink->metrics().counter("rt.breaker_trips").value(), 1u);
  EXPECT_EQ(sink->metrics().counter("rt.probes").value(), 2u);
  EXPECT_EQ(sink->metrics().counter("rt.breaker_closes").value(), 1u);

  // Exact distinct-state sequence the engine saw for the victim.
  const std::vector<HealthState> expected = {
      HealthState::kDegraded, HealthState::kCritical, HealthState::kDegraded,
      HealthState::kHealthy};
  EXPECT_EQ(observed, expected);

  // And the engine's own transition log: exactly four transitions, in
  // order, with strictly increasing evaluation stamps.
  const auto trans = engine.transitions_of(victim_subject);
  ASSERT_EQ(trans.size(), 4u);
  const HealthState walk[5] = {HealthState::kHealthy, HealthState::kDegraded,
                               HealthState::kCritical, HealthState::kDegraded,
                               HealthState::kHealthy};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trans[i].from, walk[i]) << "transition " << i;
    EXPECT_EQ(trans[i].to, walk[i + 1]) << "transition " << i;
    if (i > 0) EXPECT_GT(trans[i].eval_seq, trans[i - 1].eval_seq);
  }

  // The overall state mirrors the victim (it is the worst subject), and
  // the fleet-wide breaker SLO flipped degraded while the breaker was open.
  const auto overall = engine.transitions_of("overall");
  ASSERT_EQ(overall.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(overall[i].from, walk[i]);
    EXPECT_EQ(overall[i].to, walk[i + 1]);
  }
  const auto breakers = engine.transitions_of("slo:breakers");
  ASSERT_EQ(breakers.size(), 2u);
  EXPECT_EQ(breakers[0].to, HealthState::kDegraded);
  EXPECT_EQ(breakers[1].to, HealthState::kHealthy);

  // Bystander providers never left healthy; total transition count is the
  // victim's 4 + overall's 4 + the breaker SLO's 2.
  for (std::size_t i = 0; i < 8; ++i) {
    if (static_cast<ProviderIndex>(i) == victim) continue;
    EXPECT_TRUE(
        engine.transitions_of("provider:P" + std::to_string(i)).empty())
        << "P" << i;
  }
  EXPECT_EQ(sink->metrics().counter("health.transitions").value(), 10u);

  // Steady state: the final report is clean.
  exp.sample_now();
  const HealthReport last = engine.evaluate();
  EXPECT_EQ(last.overall, HealthState::kHealthy);
  EXPECT_EQ(sink->metrics().gauge("rt.open_breakers").value(), 0);
}

}  // namespace
}  // namespace cshield

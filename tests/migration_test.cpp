// Dynamic provider topology tests: the lifecycle state machine
// (join/drain/decommission), placement eligibility under each state, the
// background Migrator's bounded-movement and data-preservation guarantees,
// availability during a drain under an active fault plan, a concurrent
// lifecycle hammer (the TSan target for the registry's shared_mutex), and
// -- the acceptance centerpiece -- a crash-injection sweep that kills a
// drain at every migration-journal boundary and proves recovery resumes it
// with zero lost chunks and idempotent re-runs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/distributor.hpp"
#include "core/journal.hpp"
#include "core/metadata_io.hpp"
#include "core/migrator.hpp"
#include "obs/telemetry.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"

namespace cshield {
namespace {

namespace fs = std::filesystem;
using core::CloudDataDistributor;
using core::Journal;
using core::JournalRecord;
using core::MigrationKind;
using core::Migrator;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("cshield_migration_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

Bytes read_disk(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  Bytes data(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

void write_disk(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

bool equal(BytesView a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

/// All-PL3 fleet so every provider is placement-eligible for every file and
/// movement fractions are a pure function of the ring.
storage::ProviderRegistry flat_registry(std::size_t n) {
  storage::ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    storage::ProviderDescriptor d;
    d.name = "P" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = static_cast<CostLevel>(i % 4);
    registry.add(std::move(d), storage::LatencyModel{}, 0x70B0'0000ULL + i);
  }
  return registry;
}

core::DistributorConfig base_config(std::uint64_t seed) {
  core::DistributorConfig config;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.05;
  config.worker_threads = 2;
  config.seed = seed;
  return config;
}

storage::ProviderDescriptor joiner_descriptor(const std::string& name) {
  storage::ProviderDescriptor d;
  d.name = name;
  d.privacy_level = PrivacyLevel::kHigh;
  d.cost_level = CostLevel::kCheap;
  return d;
}

/// Total live shard slots across the chunk table (the denominator of the
/// "fraction of stripes moved" gate).
std::size_t total_shards(const core::MetadataStore& metadata) {
  std::size_t n = 0;
  for (const core::ChunkEntry& entry : metadata.chunk_table()) {
    if (!entry.deleted) n += entry.stripe.size();
  }
  return n;
}

/// Live shard slots currently placed on `p`.
std::size_t shards_on(const core::MetadataStore& metadata, ProviderIndex p) {
  std::size_t n = 0;
  for (const core::ChunkEntry& entry : metadata.chunk_table()) {
    if (entry.deleted) continue;
    for (const core::ShardLocation& loc : entry.stripe) {
      if (loc.provider == p) ++n;
    }
  }
  return n;
}

// --- lifecycle state machine ------------------------------------------------

TEST(LifecycleTest, RegistryStateMachineTransitions) {
  storage::ProviderRegistry reg = flat_registry(3);
  EXPECT_EQ(reg.lifecycle(0), ProviderLifecycle::kActive);

  // active -> draining, idempotently.
  EXPECT_TRUE(reg.drain(0).ok());
  EXPECT_EQ(reg.lifecycle(0), ProviderLifecycle::kDraining);
  EXPECT_TRUE(reg.drain(0).ok());

  // draining -> decommissioned, idempotently; then no way back.
  EXPECT_TRUE(reg.decommission(0).ok());
  EXPECT_EQ(reg.lifecycle(0), ProviderLifecycle::kDecommissioned);
  EXPECT_TRUE(reg.decommission(0).ok());
  const Status revive = reg.drain(0);
  EXPECT_EQ(revive.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(reg.activate(0).code(), ErrorCode::kFailedPrecondition);

  // joining -> active via activate(); a joining row cannot be retired.
  const ProviderIndex j = reg.add(joiner_descriptor("J"), {}, 0x1,
                                  ProviderLifecycle::kJoining);
  EXPECT_EQ(reg.lifecycle(j), ProviderLifecycle::kJoining);
  EXPECT_EQ(reg.decommission(j).code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(reg.activate(j).ok());
  EXPECT_EQ(reg.lifecycle(j), ProviderLifecycle::kActive);
  EXPECT_TRUE(reg.activate(j).ok());  // idempotent on active
}

TEST(LifecycleTest, OnlyActiveProvidersArePlacementEligible) {
  storage::ProviderRegistry reg = flat_registry(4);
  ASSERT_EQ(reg.eligible_for(PrivacyLevel::kHigh).size(), 4u);
  ASSERT_TRUE(reg.drain(1).ok());
  const ProviderIndex j = reg.add(joiner_descriptor("J"), {}, 0x2,
                                  ProviderLifecycle::kJoining);
  const std::vector<ProviderIndex> eligible =
      reg.eligible_for(PrivacyLevel::kHigh);
  EXPECT_EQ(eligible.size(), 3u);
  for (ProviderIndex p : eligible) {
    EXPECT_NE(p, 1u);
    EXPECT_NE(p, j);
  }
}

TEST(LifecycleTest, DrainOfLastActiveProviderIsRejected) {
  storage::ProviderRegistry reg = flat_registry(1);
  core::DistributorConfig config = base_config(0xD1);
  config.stripe_data_shards = 1;
  CloudDataDistributor cdd(reg, config);
  const Status st = cdd.begin_migration(MigrationKind::kDrain, 0);
  EXPECT_EQ(st.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(reg.lifecycle(0), ProviderLifecycle::kActive);
}

TEST(LifecycleTest, ConcurrentDrainsNeverRetireLastActive) {
  // Two racing drains of the final two active providers must not both
  // pass: the registry checks "at least one other active" and transitions
  // under one exclusive lock, so exactly one wins each round.
  for (int round = 0; round < 50; ++round) {
    storage::ProviderRegistry reg = flat_registry(2);
    Status a, b;
    std::thread t1([&] { a = reg.drain(0); });
    std::thread t2([&] { b = reg.drain(1); });
    t1.join();
    t2.join();
    EXPECT_NE(a.ok(), b.ok());
    EXPECT_TRUE(reg.lifecycle(0) == ProviderLifecycle::kActive ||
                reg.lifecycle(1) == ProviderLifecycle::kActive)
        << "both drains passed: fleet left with zero active providers";
  }
}

TEST(LifecycleTest, ConcurrentLifecycleHammer) {
  // TSan target: churn lifecycle transitions from several threads while
  // readers walk eligibility, descriptors and breakers. No assertion
  // beyond "no race, no torn enum": every observed state must be valid
  // and the final restored fleet fully eligible.
  storage::ProviderRegistry reg = flat_registry(8);
  std::atomic<bool> go{false};
  std::atomic<int> invalid{0};
  auto churner = [&](ProviderIndex base) {
    while (!go.load()) std::this_thread::yield();
    for (int iter = 0; iter < 400; ++iter) {
      const ProviderIndex p = base + (iter % 4);
      (void)reg.drain(p);
      (void)reg.activate(p);  // rejected while draining -- exercise failure
      reg.restore_lifecycle(p, ProviderLifecycle::kActive);
    }
  };
  auto reader = [&] {
    while (!go.load()) std::this_thread::yield();
    for (int iter = 0; iter < 400; ++iter) {
      (void)reg.eligible_for(PrivacyLevel::kHigh);
      for (ProviderIndex p = 0; p < reg.size(); ++p) {
        const int s = static_cast<int>(reg.lifecycle(p));
        if (s < 0 || s >= static_cast<int>(kNumProviderLifecycles)) {
          invalid.fetch_add(1);
        }
        (void)reg.at(p).descriptor().name;
        (void)reg.breaker(p).state();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.emplace_back(churner, 0);
  threads.emplace_back(churner, 4);
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  go.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(invalid.load(), 0);
  for (ProviderIndex p = 0; p < reg.size(); ++p) {
    reg.restore_lifecycle(p, ProviderLifecycle::kActive);
  }
  EXPECT_EQ(reg.eligible_for(PrivacyLevel::kHigh).size(), 8u);
}

// --- join -------------------------------------------------------------------

TEST(MigrationTest, JoiningProviderTakesNoPlacementUntilActivated) {
  storage::ProviderRegistry reg = flat_registry(6);
  CloudDataDistributor cdd(reg, base_config(0x901));
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;

  Result<ProviderIndex> added = cdd.add_provider(joiner_descriptor("Joiner"));
  ASSERT_TRUE(added.ok()) << added.status().to_string();
  const ProviderIndex joiner = added.value();
  EXPECT_EQ(reg.lifecycle(joiner), ProviderLifecycle::kJoining);

  const Bytes data = payload_of(9000, 7);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "pre", data, opts).ok());
  EXPECT_EQ(shards_on(cdd.metadata(), joiner), 0u)
      << "kJoining provider received placement before its migration";

  // Duplicate names and empty names are rejected up front.
  EXPECT_FALSE(cdd.add_provider(joiner_descriptor("Joiner")).ok());
  EXPECT_FALSE(cdd.add_provider(joiner_descriptor("")).ok());

  Migrator migrator(cdd);
  Result<Migrator::Report> report = migrator.run(MigrationKind::kJoin, joiner);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().committed);
  EXPECT_EQ(reg.lifecycle(joiner), ProviderLifecycle::kActive);

  Result<Bytes> back = cdd.get_file("alice", "pw", "pre");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(MigrationTest, JoinMovesBoundedFractionAndResumesIdempotently) {
  storage::ProviderRegistry reg = flat_registry(8);
  CloudDataDistributor cdd(reg, base_config(0x902));
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes f1 = payload_of(24000, 1);
  const Bytes f2 = payload_of(15000, 2);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f1", f1, opts).ok());
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f2", f2, opts).ok());
  const std::size_t shard_slots = total_shards(cdd.metadata());
  ASSERT_GT(shard_slots, 30u);

  Result<ProviderIndex> added = cdd.add_provider(joiner_descriptor("Joiner"));
  ASSERT_TRUE(added.ok());
  const ProviderIndex joiner = added.value();

  // Interrupted first pass: begin by hand, move a prefix of the chunks,
  // then let the Migrator resume -- it must re-issue begin idempotently,
  // skip what already moved, and finish the rest.
  ASSERT_TRUE(cdd.begin_migration(MigrationKind::kJoin, joiner).ok());
  std::size_t premoved = 0;
  const std::size_t half = cdd.metadata().total_chunks() / 2;
  for (std::size_t c = 0; c < half; ++c) {
    Result<CloudDataDistributor::ChunkMigrateStats> st =
        cdd.migrate_chunk(c, MigrationKind::kJoin, joiner);
    ASSERT_TRUE(st.ok()) << st.status().to_string();
    ASSERT_EQ(st.value().errors, 0u);
    premoved += st.value().moved;
  }

  Migrator migrator(cdd);
  Result<Migrator::Report> report = migrator.run(MigrationKind::kJoin, joiner);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().committed);
  EXPECT_EQ(report.value().errors, 0u);

  // The headline gate: a single join relocates at most 35% of shard slots
  // (~100% for a naive mod-N rehash; fair share here is 1/9 ~= 11%).
  const std::size_t moved = premoved + report.value().shards_moved;
  EXPECT_GT(moved, 0u);
  EXPECT_LE(static_cast<double>(moved),
            0.35 * static_cast<double>(shard_slots))
      << moved << " of " << shard_slots << " shard slots moved";
  EXPECT_EQ(shards_on(cdd.metadata(), joiner), moved);

  for (const auto& [name, want] :
       std::vector<std::pair<std::string, const Bytes*>>{{"f1", &f1},
                                                         {"f2", &f2}}) {
    Result<Bytes> back = cdd.get_file("alice", "pw", name);
    ASSERT_TRUE(back.ok()) << name;
    EXPECT_TRUE(equal(back.value(), *want)) << name;
  }

  // The migration is closed: a second join of the same provider is a
  // state-machine error, not a silent reshuffle.
  EXPECT_EQ(cdd.begin_migration(MigrationKind::kJoin, joiner).code(),
            ErrorCode::kFailedPrecondition);
}

// --- drain / decommission ---------------------------------------------------

TEST(MigrationTest, DrainEmptiesProviderPreservesDataThenDecommissions) {
  storage::ProviderRegistry reg = flat_registry(8);
  CloudDataDistributor cdd(reg, base_config(0x903));
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes f1 = payload_of(20000, 3);
  const Bytes f2 = payload_of(11000, 4);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f1", f1, opts).ok());
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f2", f2, opts).ok());

  // Drain whichever provider carries the most shards with this seed.
  ProviderIndex subject = 0;
  for (ProviderIndex p = 1; p < reg.size(); ++p) {
    if (shards_on(cdd.metadata(), p) > shards_on(cdd.metadata(), subject)) {
      subject = p;
    }
  }
  const std::size_t before = shards_on(cdd.metadata(), subject);
  ASSERT_GT(before, 0u);

  Migrator migrator(cdd);
  Result<Migrator::Report> report =
      migrator.run(MigrationKind::kDrain, subject);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().committed);
  EXPECT_EQ(report.value().shards_moved, before);
  EXPECT_EQ(reg.lifecycle(subject), ProviderLifecycle::kDraining);
  EXPECT_EQ(shards_on(cdd.metadata(), subject), 0u);
  EXPECT_TRUE(reg.at(subject).raw_store().list_ids().empty())
      << "drained provider still holds objects";

  // Draining again is a no-op resume, not an error.
  Result<Migrator::Report> again =
      migrator.run(MigrationKind::kDrain, subject);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().shards_moved, 0u);

  // Retire it for good; new placement must avoid it.
  Result<Migrator::Report> retire =
      migrator.run(MigrationKind::kDecommission, subject);
  ASSERT_TRUE(retire.ok());
  EXPECT_TRUE(retire.value().committed);
  EXPECT_EQ(reg.lifecycle(subject), ProviderLifecycle::kDecommissioned);

  const Bytes f3 = payload_of(8000, 5);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f3", f3, opts).ok());
  EXPECT_EQ(shards_on(cdd.metadata(), subject), 0u);
  for (const auto& [name, want] :
       std::vector<std::pair<std::string, const Bytes*>>{
           {"f1", &f1}, {"f2", &f2}, {"f3", &f3}}) {
    Result<Bytes> back = cdd.get_file("alice", "pw", name);
    ASSERT_TRUE(back.ok()) << name;
    EXPECT_TRUE(equal(back.value(), *want)) << name;
  }
}

TEST(MigrationTest, DrainUnderFaultPlanKeepsEveryFileReadable) {
  // The availability acceptance criterion: drain 1 of 8 providers while a
  // transient fault plan is live; concurrent reads must succeed
  // byte-identical for the whole duration of the (throttled) migration.
  storage::ProviderRegistry reg = flat_registry(8);
  auto sink = std::make_shared<obs::Telemetry>(true);
  core::DistributorConfig config = base_config(0x904);
  config.telemetry = true;
  config.telemetry_sink = sink;
  CloudDataDistributor cdd(reg, config);
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes data = payload_of(18000, 6);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f", data, opts).ok());

  reg.apply_fault_plan(std::make_shared<const storage::FaultPlan>(
      storage::FaultPlan::transient(0x5EED, 0.05)));

  Migrator::Config mconfig;
  mconfig.stripes_per_sec = 50.0;  // slow the walk so reads overlap it
  mconfig.max_in_flight = 2;
  Migrator migrator(cdd, mconfig);
  migrator.start(MigrationKind::kDrain, 5);

  std::size_t reads = 0;
  while (migrator.progress().running) {
    Result<Bytes> back = cdd.get_file("alice", "pw", "f");
    ASSERT_TRUE(back.ok()) << "read failed mid-drain: "
                           << back.status().to_string();
    ASSERT_TRUE(equal(back.value(), data));
    ++reads;
  }
  Result<Migrator::Report> report = migrator.wait();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(reads, 0u);

  // Transient noise may leave stragglers for a later pass; converge, then
  // the subject must be empty and data intact.
  for (int pass = 0; pass < 5 && !report.value().committed; ++pass) {
    report = migrator.run(MigrationKind::kDrain, 5);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
  }
  EXPECT_TRUE(report.value().committed);
  EXPECT_EQ(shards_on(cdd.metadata(), 5), 0u);
  reg.clear_fault_plan();
  Result<Bytes> back = cdd.get_file("alice", "pw", "f");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), data));
  EXPECT_GT(sink->metrics().counter("migration.shards_moved").value(), 0u);
}

TEST(MigrationTest, BackgroundStopPausesAndRunResumes) {
  storage::ProviderRegistry reg = flat_registry(8);
  CloudDataDistributor cdd(reg, base_config(0x905));
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes data = payload_of(20000, 8);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f", data, opts).ok());

  Migrator::Config mconfig;
  mconfig.stripes_per_sec = 5.0;  // slow enough that stop() lands mid-walk
  Migrator migrator(cdd, mconfig);
  migrator.start(MigrationKind::kDrain, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  migrator.stop();
  Result<Migrator::Report> paused = migrator.wait();
  ASSERT_TRUE(paused.ok());
  EXPECT_FALSE(paused.value().committed);
  EXPECT_EQ(reg.lifecycle(2), ProviderLifecycle::kDraining);

  // Unthrottled resume finishes the job.
  Migrator resume(cdd);
  Result<Migrator::Report> done = resume.run(MigrationKind::kDrain, 2);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value().committed);
  EXPECT_EQ(shards_on(cdd.metadata(), 2), 0u);
  Result<Bytes> back = cdd.get_file("alice", "pw", "f");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(MigrationTest, BackgroundStartAfterFinishedRunLaunchesAgain) {
  // A completed background run leaves its thread joinable until
  // wait()/stop(); a second start() must reap it and launch, not silently
  // no-op while progress().running reports false.
  storage::ProviderRegistry reg = flat_registry(8);
  CloudDataDistributor cdd(reg, base_config(0x906));
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes data = payload_of(20000, 9);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f", data, opts).ok());

  Migrator migrator(cdd);
  migrator.start(MigrationKind::kDrain, 2);
  for (int i = 0; i < 20000 && migrator.progress().running; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(migrator.progress().running);

  // No wait() in between: the finished thread is still unreaped.
  migrator.start(MigrationKind::kDrain, 3);
  Result<Migrator::Report> report = migrator.wait();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().committed);
  EXPECT_EQ(reg.lifecycle(3), ProviderLifecycle::kDraining)
      << "second start() never launched";
  EXPECT_EQ(shards_on(cdd.metadata(), 3), 0u);
}

// --- migrator vs. concurrent chunk writers ----------------------------------

TEST(MetadataCasTest, UpdateChunkIfRefusesStaleVersion) {
  core::MetadataStore store;
  ASSERT_TRUE(store.register_client("alice").ok());
  ASSERT_TRUE(store.claim_file("alice", "f").ok());
  core::ChunkEntry entry;
  entry.privacy_level = PrivacyLevel::kHigh;
  Result<std::size_t> idx = store.add_chunk("alice", "f", 0, entry);
  ASSERT_TRUE(idx.ok());

  Result<core::MetadataStore::VersionedChunk> v0 =
      store.chunk_entry_versioned(idx.value());
  ASSERT_TRUE(v0.ok());

  // A concurrent writer commits first: the stale token must be refused and
  // the newer row left untouched.
  core::ChunkEntry newer = v0.value().entry;
  newer.padded_size = 111;
  ASSERT_TRUE(store.update_chunk(idx.value(), newer).ok());
  core::ChunkEntry stale = v0.value().entry;
  stale.padded_size = 222;
  const Status lost =
      store.update_chunk_if(idx.value(), stale, v0.value().version);
  EXPECT_EQ(lost.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(store.chunk_entry(idx.value()).value().padded_size, 111u);

  // Re-read and redo: the fresh token commits and bumps the version.
  Result<core::MetadataStore::VersionedChunk> v1 =
      store.chunk_entry_versioned(idx.value());
  ASSERT_TRUE(v1.ok());
  core::ChunkEntry redo = v1.value().entry;
  redo.padded_size = 333;
  EXPECT_TRUE(
      store.update_chunk_if(idx.value(), redo, v1.value().version).ok());
  EXPECT_EQ(store.chunk_entry(idx.value()).value().padded_size, 333u);
  EXPECT_NE(store.chunk_entry_versioned(idx.value()).value().version,
            v1.value().version);
}

TEST(MigrationTest, ConcurrentClientUpdatesDuringDrainLeaveNoHoles) {
  // Regression for the migrator's read-modify-write racing live client
  // updates on the same chunk rows: without the version CAS the migrator
  // could commit a stale row over a client's newer one and then delete the
  // retired copies that newer row still references -- a permanent hole.
  // Here a client rewrites every chunk continuously while a throttled
  // drain walks the table; afterwards every chunk must read back equal to
  // its last committed update.
  storage::ProviderRegistry reg = flat_registry(8);
  CloudDataDistributor cdd(reg, base_config(0x90C));
  ASSERT_TRUE(cdd.register_client("alice").ok());
  ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Bytes data = payload_of(30000, 11);
  ASSERT_TRUE(cdd.put_file("alice", "pw", "f", data, opts).ok());
  const std::vector<core::ChunkRef> refs =
      cdd.metadata().file_chunks("alice", "f");
  ASSERT_GT(refs.size(), 1u);

  const ProviderIndex subject = 4;
  Migrator::Config mconfig;
  mconfig.stripes_per_sec = 200.0;  // slow the walk so updates interleave
  mconfig.max_in_flight = 2;
  Migrator migrator(cdd, mconfig);
  migrator.start(MigrationKind::kDrain, subject);

  // Serial updater racing the background walk: per chunk, the last update
  // this loop committed is the content the final read must return.
  std::map<std::uint64_t, Bytes> expected;
  std::uint64_t seed = 0x9000;
  do {
    for (const core::ChunkRef& ref : refs) {
      const Bytes next = payload_of(512 + (seed % 1024), seed);
      ++seed;
      Status st = cdd.update_chunk("alice", "pw", "f", ref.serial, next);
      ASSERT_TRUE(st.ok()) << st.to_string();
      expected[ref.serial] = next;
    }
  } while (migrator.progress().running);
  Result<Migrator::Report> report = migrator.wait();
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  // Lost CAS races surface as errors; converge now that updates quiesced.
  for (int pass = 0; pass < 5 && !report.value().committed; ++pass) {
    report = migrator.run(MigrationKind::kDrain, subject);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
  }
  EXPECT_TRUE(report.value().committed);
  EXPECT_EQ(shards_on(cdd.metadata(), subject), 0u);
  for (const auto& [serial, want] : expected) {
    Result<Bytes> back = cdd.get_chunk("alice", "pw", "f", serial);
    ASSERT_TRUE(back.ok()) << "chunk " << serial
                           << " lost: " << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), want)) << "chunk " << serial;
  }
}

// --- durability: checkpoint + crash sweep -----------------------------------

TEST(MigrationTest, CheckpointPersistsPendingDrainAcrossTruncation) {
  TempDir dir;
  const fs::path jpath = dir.path() / "journal.wal";
  const fs::path cpath = dir.path() / "metadata.bin";
  storage::ProviderRegistry reg = flat_registry(8);
  {
    Result<std::unique_ptr<Journal>> j = Journal::open(jpath);
    ASSERT_TRUE(j.ok());
    core::DistributorConfig config = base_config(0x906);
    config.journal = std::shared_ptr<Journal>(std::move(j.value()));
    config.checkpoint_path = cpath.string();
    CloudDataDistributor cdd(reg, config);
    ASSERT_TRUE(cdd.register_client("alice").ok());
    ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    ASSERT_TRUE(
        cdd.put_file("alice", "pw", "f", payload_of(9000, 9), opts).ok());
    ASSERT_TRUE(cdd.begin_migration(MigrationKind::kDrain, 4).ok());
    // Checkpoint folds + truncates: the kBeginMigrate record is gone from
    // the journal, so the pending intent must be synthesized from the
    // persisted lifecycle column.
    ASSERT_TRUE(cdd.checkpoint().ok());
  }
  Result<core::RecoveredState> rec = core::recover_metadata(cpath, jpath);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  ASSERT_EQ(rec.value().pending_migrations.size(), 1u);
  EXPECT_EQ(rec.value().pending_migrations[0].kind, MigrationKind::kDrain);
  EXPECT_EQ(rec.value().pending_migrations[0].provider, 4u);
  EXPECT_EQ(rec.value().metadata->provider_lifecycle(4),
            ProviderLifecycle::kDraining);
}

/// Durable world at one crash instant plus what recovery must reproduce.
struct CrashScenario {
  std::string label;
  Bytes journal;
  Bytes checkpoint;
  std::vector<std::map<VirtualId, Bytes>> providers;
};

TEST(MigrationTest, DrainCrashSweepRecoversAndResumes) {
  // Kill a journaled drain at the instant before and after every journal
  // append it makes (kBeginMigrate, one kUpdateChunk per moved shard,
  // kCommitMigrate). Recovery from each snapshot must (a) read every file
  // back byte-identical, (b) resume and finish the drain when one was
  // pending, (c) leave zero orphan objects, and (d) be idempotent.
  TempDir live;
  const fs::path jpath = live.path() / "journal.wal";
  const fs::path cpath = live.path() / "metadata.bin";
  constexpr std::size_t kFleet = 8;
  ProviderIndex kSubject = 0;  // picked below: the most-loaded provider
  storage::ProviderRegistry reg = flat_registry(kFleet);
  const Bytes f1 = payload_of(9000, 21);
  const Bytes f2 = payload_of(6000, 22);

  std::vector<CrashScenario> scenarios;
  auto snapshot_providers = [&reg] {
    std::vector<std::map<VirtualId, Bytes>> out(reg.size());
    for (std::size_t p = 0; p < reg.size(); ++p) {
      const storage::MemoryStore& store = reg.at(p).raw_store();
      for (VirtualId id : store.list_ids()) {
        Result<Bytes> obj = store.get(id);
        if (obj.ok()) out[p][id] = std::move(obj).value();
      }
    }
    return out;
  };

  {
    Result<std::unique_ptr<Journal>> j = Journal::open(jpath);
    ASSERT_TRUE(j.ok());
    Journal& journal = *j.value();
    core::DistributorConfig config = base_config(0x907);
    config.journal = std::shared_ptr<Journal>(std::move(j.value()));
    config.checkpoint_path = cpath.string();
    CloudDataDistributor cdd(reg, config);
    ASSERT_TRUE(cdd.register_client("alice").ok());
    ASSERT_TRUE(cdd.add_password("alice", "pw", PrivacyLevel::kHigh).ok());
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f1", f1, opts).ok());
    ASSERT_TRUE(cdd.put_file("alice", "pw", "f2", f2, opts).ok());
    for (ProviderIndex p = 1; p < reg.size(); ++p) {
      if (shards_on(cdd.metadata(), p) >
          shards_on(cdd.metadata(), kSubject)) {
        kSubject = p;
      }
    }
    ASSERT_GT(shards_on(cdd.metadata(), kSubject), 0u);

    // Arm the recorder only for the migration itself.
    journal.test_hook_before_append = [&](const JournalRecord& rec) {
      CrashScenario sc;
      sc.label = "before #" + std::to_string(scenarios.size()) +
                 " op=" + std::to_string(static_cast<int>(rec.op));
      sc.journal = read_disk(jpath);
      sc.checkpoint = read_disk(cpath);
      sc.providers = snapshot_providers();
      scenarios.push_back(std::move(sc));
    };
    journal.test_hook_after_append = [&](const JournalRecord& rec) {
      CrashScenario sc;
      sc.label = "after #" + std::to_string(scenarios.size()) +
                 " op=" + std::to_string(static_cast<int>(rec.op));
      sc.journal = read_disk(jpath);
      sc.checkpoint = read_disk(cpath);
      sc.providers = snapshot_providers();
      scenarios.push_back(std::move(sc));
    };

    Migrator migrator(cdd);
    Result<Migrator::Report> report =
        migrator.run(MigrationKind::kDrain, kSubject);
    journal.test_hook_before_append = nullptr;
    journal.test_hook_after_append = nullptr;
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    ASSERT_TRUE(report.value().committed);
    ASSERT_GT(report.value().shards_moved, 0u);
    // begin + one update per moved shard + commit, each captured twice.
    ASSERT_GE(scenarios.size(), 2 * (report.value().shards_moved + 2));
  }

  for (const CrashScenario& sc : scenarios) {
    SCOPED_TRACE(sc.label);
    TempDir dir;
    const fs::path j2 = dir.path() / "journal.wal";
    const fs::path c2 = dir.path() / "metadata.bin";
    write_disk(j2, sc.journal);
    if (!sc.checkpoint.empty()) write_disk(c2, sc.checkpoint);

    storage::ProviderRegistry fresh = flat_registry(kFleet);
    for (std::size_t p = 0; p < sc.providers.size(); ++p) {
      for (const auto& [id, bytes] : sc.providers[p]) {
        ASSERT_TRUE(fresh.at(p).put(id, bytes).ok());
      }
    }

    Result<core::RecoveredState> rec = core::recover_metadata(c2, j2);
    ASSERT_TRUE(rec.ok()) << rec.status().to_string();
    // A restart rebuilds registry lifecycle from the persisted table.
    const auto table = rec.value().metadata->provider_table();
    for (ProviderIndex p = 0; p < fresh.size() && p < table.size(); ++p) {
      fresh.restore_lifecycle(p, table[p].lifecycle);
    }
    Result<std::unique_ptr<Journal>> reopened = Journal::open(j2);
    ASSERT_TRUE(reopened.ok());
    core::DistributorConfig config = base_config(0x907);
    config.journal = std::shared_ptr<Journal>(std::move(reopened.value()));
    config.checkpoint_path = c2.string();
    CloudDataDistributor cdd(fresh, config, rec.value().metadata);
    Result<CloudDataDistributor::ReconcileReport> rep =
        cdd.reconcile(rec.value().in_flight);
    ASSERT_TRUE(rep.ok()) << rep.status().to_string();

    // Zero lost chunks at every crash point, before any resume.
    for (const auto& [name, want] :
         std::vector<std::pair<std::string, const Bytes*>>{{"f1", &f1},
                                                           {"f2", &f2}}) {
      Result<Bytes> back = cdd.get_file("alice", "pw", name);
      ASSERT_TRUE(back.ok()) << name << ": " << back.status().to_string();
      EXPECT_TRUE(equal(back.value(), *want)) << name;
    }

    // Resume whatever the journal says was in flight; it must converge.
    for (const core::MigrationIntent& intent :
         rec.value().pending_migrations) {
      Migrator migrator(cdd);
      Result<Migrator::Report> done =
          migrator.run(intent.kind, intent.provider);
      ASSERT_TRUE(done.ok()) << done.status().to_string();
      EXPECT_TRUE(done.value().committed);
    }
    if (!rec.value().pending_migrations.empty()) {
      EXPECT_EQ(shards_on(cdd.metadata(), kSubject), 0u);
      EXPECT_TRUE(fresh.at(kSubject).raw_store().list_ids().empty());
    }

    // No orphans after reconcile + resume: every provider object is
    // referenced by a live chunk row.
    std::set<std::pair<ProviderIndex, VirtualId>> referenced;
    for (const core::ChunkEntry& entry :
         rec.value().metadata->chunk_table()) {
      if (entry.deleted) continue;
      for (const core::ShardLocation& loc : entry.stripe) {
        referenced.insert({loc.provider, loc.virtual_id});
      }
      for (const core::ShardLocation& loc : entry.snapshot) {
        referenced.insert({loc.provider, loc.virtual_id});
      }
    }
    for (std::size_t p = 0; p < fresh.size(); ++p) {
      for (VirtualId id : fresh.at(p).list_ids()) {
        EXPECT_TRUE(referenced.count({static_cast<ProviderIndex>(p), id}))
            << "orphan object " << id << " at provider " << p;
      }
    }

    // Idempotence: a second recovery sees nothing left to do.
    Result<core::RecoveredState> second = core::recover_metadata(c2, j2);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().pending_migrations.empty());
    Result<CloudDataDistributor::ReconcileReport> again =
        cdd.reconcile(second.value().in_flight);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().orphans_removed, 0u);
  }
}

}  // namespace
}  // namespace cshield

// Tests for the synthetic workloads and the record codec, including the
// check that the exact Table IV data reproduces the paper's full-data
// regression equation (1.4, 1.5, 3.1) + 5436.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mining/hierarchical.hpp"
#include "mining/metrics.hpp"
#include "mining/regression.hpp"
#include "workload/bidding.hpp"
#include "mining/naive_bayes.hpp"
#include "workload/gps.hpp"
#include "workload/patients.hpp"
#include "workload/records.hpp"
#include "workload/transactions.hpp"

namespace cshield::workload {
namespace {

// --- RecordCodec -----------------------------------------------------------------

TEST(RecordCodecTest, EncodeDecodeRoundTrip) {
  RecordCodec codec({"a", "b", "c"});
  mining::Dataset d({"a", "b", "c"});
  d.add_row({1.5, -2.25, 1e9});
  d.add_row({0.0, 3.14159, -0.001});
  const Bytes bytes = codec.encode(d);
  EXPECT_EQ(bytes.size(), 2 * codec.record_size());
  Result<mining::Dataset> back = codec.decode(bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().num_rows(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(back.value().at(r, c), d.at(r, c));
    }
  }
}

TEST(RecordCodecTest, DecodeRejectsPartialRecord) {
  RecordCodec codec({"a", "b"});
  Bytes bytes(codec.record_size() + 3, 0);
  EXPECT_EQ(codec.decode(bytes).status().code(), ErrorCode::kInvalidArgument);
}

TEST(RecordCodecTest, DecodePrefixDropsTail) {
  RecordCodec codec({"a"});
  mining::Dataset d({"a"});
  d.add_row({42.0});
  d.add_row({43.0});
  Bytes bytes = codec.encode(d);
  bytes.resize(bytes.size() - 1);  // truncate into the second record
  const mining::Dataset back = codec.decode_prefix(bytes);
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(back.at(0, 0), 42.0);
}

TEST(RecordCodecTest, RecordSizeIsColumnsTimesDouble) {
  EXPECT_EQ(RecordCodec({"x", "y", "z", "w"}).record_size(), 32u);
}

TEST(SerializeDatasetTest, SelfDescribingRoundTrip) {
  mining::Dataset d({"alpha", "beta"});
  d.add_row({1, 2});
  d.add_row({3, 4});
  Result<mining::Dataset> back = deserialize_dataset(serialize_dataset(d));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().column_names(), d.column_names());
  EXPECT_EQ(back.value().num_rows(), 2u);
  EXPECT_DOUBLE_EQ(back.value().at(1, 1), 4.0);
}

TEST(SerializeDatasetTest, RejectsGarbage) {
  EXPECT_FALSE(deserialize_dataset(to_bytes("not a dataset")).ok());
  EXPECT_FALSE(deserialize_dataset({}).ok());
}

TEST(SerializeDatasetTest, RejectsTruncation) {
  mining::Dataset d({"a"});
  for (int i = 0; i < 10; ++i) d.add_row({1.0 * i});
  Bytes bytes = serialize_dataset(d);
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(deserialize_dataset(bytes).ok());
}

// --- bidding (Table IV) -----------------------------------------------------------

TEST(BiddingTest, TableIVHasTwelveRows) {
  const mining::Dataset d = hercules_table();
  EXPECT_EQ(d.num_rows(), 12u);
  EXPECT_EQ(d.column_names(), bidding_columns());
  // Spot-check first and last rows against the paper.
  EXPECT_DOUBLE_EQ(d.at(0, d.column_index("Bid")), 18111.0);
  EXPECT_DOUBLE_EQ(d.at(11, d.column_index("Bid")), 21199.0);
  EXPECT_DOUBLE_EQ(d.at(6, d.column_index("Production")), 1000.0);
}

TEST(BiddingTest, FullTableRecoversPaperEquation) {
  // SVII-A: mining the whole table gives "near (1.4*Materials +
  // 1.5*Production + 3.1*Maintenance) + 5436".
  Result<mining::LinearModel> m =
      mining::fit_linear(hercules_table(), bidding_features(), "Bid");
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m.value().coefficients[0], 1.4, 0.15);
  EXPECT_NEAR(m.value().coefficients[1], 1.5, 0.15);
  EXPECT_NEAR(m.value().coefficients[2], 3.1, 0.15);
  EXPECT_NEAR(m.value().intercept, 5436.0, 450.0);
  EXPECT_GT(m.value().r_squared, 0.99);
}

TEST(BiddingTest, FragmentsYieldMisleadingEquations) {
  // SVII-A: each 4-row fragment leads to a different, misleading equation.
  const auto parts = hercules_table().split_contiguous(3);
  Result<mining::LinearModel> full =
      mining::fit_linear(hercules_table(), bidding_features(), "Bid");
  ASSERT_TRUE(full.ok());
  for (const auto& part : parts) {
    ASSERT_EQ(part.num_rows(), 4u);
    Result<mining::LinearModel> frag =
        mining::fit_linear(part, bidding_features(), "Bid");
    ASSERT_TRUE(frag.ok());  // 4 rows can fit 4 parameters -- barely
    EXPECT_GT(mining::coefficient_error(full.value(), frag.value()), 0.01);
  }
}

TEST(BiddingTest, GeneratorPlantsGroundTruth) {
  BiddingGenerator gen(1);
  const mining::Dataset d = gen.generate(4000, /*noise_stddev=*/50.0);
  EXPECT_EQ(d.num_rows(), 4000u);
  Result<mining::LinearModel> m =
      mining::fit_linear(d, bidding_features(), "Bid");
  ASSERT_TRUE(m.ok());
  const auto& truth = gen.ground_truth();
  EXPECT_NEAR(m.value().coefficients[0], truth.coefficients[0], 0.05);
  EXPECT_NEAR(m.value().coefficients[1], truth.coefficients[1], 0.05);
  EXPECT_NEAR(m.value().coefficients[2], truth.coefficients[2], 0.05);
  EXPECT_NEAR(m.value().intercept, truth.intercept, 200.0);
}

TEST(BiddingTest, NoiselessGeneratorIsExact) {
  BiddingGenerator gen(2);
  const mining::Dataset d = gen.generate(100, 0.0);
  Result<mining::LinearModel> m =
      mining::fit_linear(d, bidding_features(), "Bid");
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m.value().rmse, 0.0, 1e-6);
}

// --- GPS --------------------------------------------------------------------------

TEST(GpsTest, GeneratesRequestedShape) {
  GpsConfig cfg;
  cfg.num_users = 10;
  cfg.observations_per_user = 100;
  const GpsTraces traces = generate_gps(cfg);
  EXPECT_EQ(traces.observations.num_rows(), 1000u);
  EXPECT_EQ(traces.community_of_user.size(), 10u);
  // All observations within greater Dhaka.
  const std::size_t lat = traces.observations.column_index("lat");
  const std::size_t lon = traces.observations.column_index("lon");
  for (std::size_t r = 0; r < traces.observations.num_rows(); ++r) {
    EXPECT_GT(traces.observations.at(r, lat), 23.5);
    EXPECT_LT(traces.observations.at(r, lat), 24.1);
    EXPECT_GT(traces.observations.at(r, lon), 90.2);
    EXPECT_LT(traces.observations.at(r, lon), 90.6);
  }
}

TEST(GpsTest, ObservationsAreChronologicalPerUser) {
  GpsConfig cfg;
  cfg.num_users = 3;
  cfg.observations_per_user = 60;
  const GpsTraces traces = generate_gps(cfg);
  const std::size_t user_col = traces.observations.column_index("user");
  const std::size_t day_col = traces.observations.column_index("day");
  double last_user = -1;
  double last_day = -1;
  for (std::size_t r = 0; r < traces.observations.num_rows(); ++r) {
    const double u = traces.observations.at(r, user_col);
    const double d = traces.observations.at(r, day_col);
    if (u == last_user) {
      EXPECT_GE(d, last_day);
    }
    last_user = u;
    last_day = d;
  }
}

TEST(GpsTest, FullDataClusteringRecoversCommunities) {
  GpsConfig cfg;  // 30 users, 3000 obs, 4 communities
  const GpsTraces traces = generate_gps(cfg);
  const mining::Dataset features =
      gps_user_features(traces.observations, cfg.num_users);
  ASSERT_EQ(features.num_rows(), 30u);
  const auto labels =
      mining::cluster_rows(mining::standardize(features),
                           mining::Linkage::kAverage)
          .cut(cfg.num_communities);
  const double ari =
      mining::adjusted_rand_index(labels, traces.community_of_user);
  EXPECT_GT(ari, 0.8) << "full-data clustering should recover neighbourhoods";
}

TEST(GpsTest, FeaturesHandleMissingUsers) {
  GpsConfig cfg;
  cfg.num_users = 5;
  cfg.observations_per_user = 50;
  const GpsTraces traces = generate_gps(cfg);
  // Keep only users 0..2: the adversary never saw users 3 and 4.
  std::vector<std::size_t> idx;
  const std::size_t user_col = traces.observations.column_index("user");
  for (std::size_t r = 0; r < traces.observations.num_rows(); ++r) {
    if (traces.observations.at(r, user_col) < 3.0) idx.push_back(r);
  }
  const mining::Dataset subset = traces.observations.select_rows(idx);
  const mining::Dataset features = gps_user_features(subset, 5);
  ASSERT_EQ(features.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(features.at(4, 0), 0.0);  // unseen user = all zero
  EXPECT_GT(features.at(0, 0), 23.0);
}

TEST(GpsTest, DeterministicForSeed) {
  GpsConfig cfg;
  cfg.num_users = 4;
  cfg.observations_per_user = 20;
  const GpsTraces a = generate_gps(cfg);
  const GpsTraces b = generate_gps(cfg);
  EXPECT_DOUBLE_EQ(a.observations.at(10, 3), b.observations.at(10, 3));
}

// --- transactions -------------------------------------------------------------------

TEST(TransactionsTest, GeneratesPlantedBundles) {
  TransactionConfig cfg;
  const TransactionWorkload w = generate_transactions(cfg);
  EXPECT_EQ(w.transactions.size(), cfg.num_transactions);
  EXPECT_EQ(w.planted_bundles.size(), cfg.num_bundles);
  // Each bundle should be fully contained in a healthy fraction of txns.
  for (const auto& bundle : w.planted_bundles) {
    std::size_t hits = 0;
    for (const auto& t : w.transactions) {
      if (std::includes(t.begin(), t.end(), bundle.begin(), bundle.end())) {
        ++hits;
      }
    }
    EXPECT_GT(static_cast<double>(hits) / cfg.num_transactions, 0.02);
  }
}

TEST(TransactionsTest, TransactionsAreSortedSets) {
  const TransactionWorkload w = generate_transactions(TransactionConfig{});
  for (const auto& t : w.transactions) {
    EXPECT_FALSE(t.empty());
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
    std::set<std::uint32_t> unique(t.begin(), t.end());
    EXPECT_EQ(unique.size(), t.size());
  }
}

TEST(TransactionsTest, DatasetRoundTrip) {
  TransactionConfig cfg;
  cfg.num_transactions = 50;
  const TransactionWorkload w = generate_transactions(cfg);
  const mining::Dataset d = transactions_to_dataset(w.transactions);
  const auto back = dataset_to_transactions(d);
  ASSERT_EQ(back.size(), w.transactions.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], w.transactions[i]);
  }
}

// --- patients ---------------------------------------------------------------------

TEST(PatientsTest, GeneratesPlausibleClinicalRanges) {
  PatientConfig cfg;
  cfg.num_patients = 500;
  const mining::Dataset d = generate_patients(cfg);
  EXPECT_EQ(d.num_rows(), 500u);
  const std::size_t age = d.column_index("age");
  const std::size_t risk = d.column_index("risk");
  for (std::size_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_GE(d.at(r, age), 18.0);
    EXPECT_LE(d.at(r, age), 95.0);
    EXPECT_GE(d.at(r, risk), 0.0);
    EXPECT_LE(d.at(r, risk), 2.0);
  }
}

TEST(PatientsTest, AllRiskClassesPresent) {
  const mining::Dataset d = generate_patients(PatientConfig{});
  std::set<int> classes;
  const std::size_t risk = d.column_index("risk");
  for (std::size_t r = 0; r < d.num_rows(); ++r) {
    classes.insert(static_cast<int>(d.at(r, risk)));
  }
  EXPECT_EQ(classes.size(), 3u);
}

TEST(PatientsTest, RiskIsLearnable) {
  // The planted structure must be recoverable by a classifier, else the
  // classification attack has nothing to lose under fragmentation.
  PatientConfig cfg;
  cfg.num_patients = 2400;
  const mining::Dataset all = generate_patients(cfg);
  Result<mining::NaiveBayes> model =
      mining::NaiveBayes::fit(all.slice_rows(0, 2000), "risk");
  ASSERT_TRUE(model.ok());
  const double acc = model.value().accuracy(all.slice_rows(2000, 2400), "risk");
  EXPECT_GT(acc, 0.6);  // 3 classes, chance ~0.33 at best
}

TEST(PatientsTest, DeterministicForSeed) {
  const mining::Dataset a = generate_patients(PatientConfig{});
  const mining::Dataset b = generate_patients(PatientConfig{});
  EXPECT_DOUBLE_EQ(a.at(100, 2), b.at(100, 2));
}

TEST(TransactionsTest, FullDataAprioriRecoversBundleRules) {
  TransactionConfig cfg;
  cfg.num_transactions = 3000;
  const TransactionWorkload w = generate_transactions(cfg);
  mining::AprioriOptions opts;
  opts.min_support = 0.02;
  opts.min_confidence = 0.5;
  Result<mining::AprioriResult> r = mining::apriori(w.transactions, opts);
  ASSERT_TRUE(r.ok());
  // Every planted bundle should surface as a frequent itemset.
  std::size_t found = 0;
  for (const auto& bundle : w.planted_bundles) {
    for (const auto& fs : r.value().itemsets) {
      if (fs.items == bundle) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, w.planted_bundles.size());
}

}  // namespace
}  // namespace cshield::workload

// Chaos suite for the fault-tolerant request layer: FaultPlan decision
// semantics, circuit-breaker state machine, scripted end-to-end scenarios
// (flaky-recovers-mid-put, slow-triggers-hedge, breaker-opens-then-heals,
// repair-heals-quarantine), and the acceptance property -- 5% transient
// noise over a 256-chunk put/get with zero client-visible errors and
// byte-for-byte replayable retry counts and trace spans.
//
// Every scenario runs the replay harness configuration: one worker thread,
// one I/O thread, pipelined engine. The pools drain FIFO, so each
// provider's request sequence -- the FaultPlan's clock -- is a pure
// function of the workload, and two runs with the same plan seed produce
// identical faults, retries, and span streams.
#include <gtest/gtest.h>

#include <memory>
#include <regex>
#include <string>

#include "core/distributor.hpp"
#include "core/migrator.hpp"
#include "core/request_layer.hpp"
#include "obs/telemetry.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"

namespace cshield {
namespace {

using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;
using storage::CircuitBreaker;
using storage::FaultEpisode;
using storage::FaultKind;
using storage::FaultPlan;

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

/// All-PL3 fleet with deterministic latency seeds so every scenario's
/// modeled times replay exactly.
storage::ProviderRegistry flat_registry(std::size_t n) {
  storage::ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    storage::ProviderDescriptor d;
    d.name = "P" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = static_cast<CostLevel>(i % 4);
    registry.add(std::move(d), storage::LatencyModel{}, 0xBEEF0000ULL + i);
  }
  return registry;
}

/// Deterministic-replay distributor config: single-threaded pools (FIFO
/// request order), pipelined engine (exercises lazy-parity reads and
/// hedging), private telemetry sink.
DistributorConfig replay_config(std::shared_ptr<obs::Telemetry> sink) {
  DistributorConfig config;
  config.stripe_data_shards = 3;
  config.worker_threads = 1;
  config.io_threads = 1;
  config.pipelined = true;
  config.telemetry = true;
  config.telemetry_sink = std::move(sink);
  config.seed = 0xC405;
  return config;
}

// --- FaultPlan decision semantics -------------------------------------------

TEST(FaultPlanTest, DecisionsArePureFunctions) {
  const FaultPlan plan = FaultPlan::transient(0x5EED, 0.3);
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const storage::FaultDecision first = plan.decide(2, seq);
    for (int again = 0; again < 3; ++again) {
      EXPECT_EQ(plan.decide(2, seq).fail, first.fail) << seq;
    }
  }
}

TEST(FaultPlanTest, TransientRateTracksProbability) {
  const FaultPlan plan = FaultPlan::transient(0xAB, 0.3);
  int failed = 0;
  constexpr int kTrials = 10000;
  for (std::uint64_t seq = 0; seq < kTrials; ++seq) {
    if (plan.decide(0, seq).fail) ++failed;
  }
  const double rate = static_cast<double>(failed) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(FaultPlanTest, SeedChangesTransientPattern) {
  const FaultPlan a = FaultPlan::transient(1, 0.5);
  const FaultPlan b = FaultPlan::transient(2, 0.5);
  int differ = 0;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    if (a.decide(0, seq).fail != b.decide(0, seq).fail) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultPlanTest, CrashWindowIsHalfOpen) {
  FaultPlan plan;
  FaultEpisode ep;
  ep.provider = 1;
  ep.kind = FaultKind::kCrash;
  ep.begin = 5;
  ep.end = 8;
  plan.episodes.push_back(ep);
  EXPECT_FALSE(plan.decide(1, 4).fail);
  EXPECT_TRUE(plan.decide(1, 5).fail);
  EXPECT_TRUE(plan.decide(1, 7).fail);
  EXPECT_FALSE(plan.decide(1, 8).fail);
  // Scoped to provider 1 only.
  EXPECT_FALSE(plan.decide(0, 6).fail);
}

TEST(FaultPlanTest, FlakyBurstsFollowPeriod) {
  FaultPlan plan;
  FaultEpisode ep;
  ep.kind = FaultKind::kFlaky;
  ep.begin = 10;
  ep.end = storage::kNoSeqEnd;
  ep.period = 4;
  ep.burst = 2;
  plan.episodes.push_back(ep);
  // First `burst` requests of every `period` cycle fail, aligned to begin.
  for (std::uint64_t seq = 10; seq < 30; ++seq) {
    EXPECT_EQ(plan.decide(0, seq).fail, (seq - 10) % 4 < 2) << seq;
  }
  EXPECT_FALSE(plan.decide(0, 9).fail);  // before the window
}

TEST(FaultPlanTest, OverlappingSlowEpisodesMultiply) {
  FaultPlan plan;
  FaultEpisode a;
  a.kind = FaultKind::kSlow;
  a.slow_factor = 2.0;
  FaultEpisode b;
  b.kind = FaultKind::kSlow;
  b.slow_factor = 3.0;
  plan.episodes = {a, b};
  const storage::FaultDecision d = plan.decide(0, 0);
  EXPECT_FALSE(d.fail);
  EXPECT_DOUBLE_EQ(d.slow_factor, 6.0);
}

TEST(FaultPlanTest, ProviderReplaysIdenticalFaultsAfterReinstall) {
  auto plan = std::make_shared<FaultPlan>(FaultPlan::transient(0xF00, 0.5));
  storage::ProviderDescriptor d;
  d.name = "replay";
  storage::SimCloudProvider prov(std::move(d), storage::LatencyModel{}, 77);
  auto pattern = [&] {
    std::string out;
    for (int i = 0; i < 100; ++i) {
      out += prov.put(static_cast<VirtualId>(i + 1), Bytes{1, 2, 3}).ok()
                 ? 'o'
                 : 'x';
    }
    return out;
  };
  prov.install_fault_plan(plan, 0);
  const std::string first = pattern();
  EXPECT_NE(first.find('x'), std::string::npos);
  EXPECT_NE(first.find('o'), std::string::npos);
  // Reinstall resets the sequence clock: the same request stream replays
  // the exact same fault pattern.
  prov.install_fault_plan(plan, 0);
  EXPECT_EQ(pattern(), first);
}

// --- circuit breaker state machine ------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreaker b(CircuitBreaker::Config{3, 4});
  EXPECT_FALSE(b.on_failure());
  EXPECT_FALSE(b.on_failure());
  b.on_success();  // breaks the streak
  EXPECT_FALSE(b.on_failure());
  EXPECT_FALSE(b.on_failure());
  EXPECT_TRUE(b.on_failure());  // third consecutive: the trip event
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, OpenRejectsUntilCountBasedProbe) {
  CircuitBreaker b(CircuitBreaker::Config{1, 3});
  EXPECT_TRUE(b.on_failure());
  EXPECT_EQ(b.admit(), CircuitBreaker::Decision::kReject);
  EXPECT_EQ(b.admit(), CircuitBreaker::Decision::kReject);
  EXPECT_EQ(b.admit(), CircuitBreaker::Decision::kProbe);  // every 3rd
  // While the probe is in flight the breaker stays half-open and admits
  // nothing else.
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(b.admit(), CircuitBreaker::Decision::kReject);
}

TEST(CircuitBreakerTest, ProbeOutcomeHealsOrReopens) {
  CircuitBreaker b(CircuitBreaker::Config{1, 2});
  EXPECT_TRUE(b.on_failure());
  (void)b.admit();
  EXPECT_EQ(b.admit(), CircuitBreaker::Decision::kProbe);
  // Failed probe re-opens without counting as a fresh trip.
  EXPECT_FALSE(b.on_failure());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  (void)b.admit();
  EXPECT_EQ(b.admit(), CircuitBreaker::Decision::kProbe);
  // Successful probe closes: the heal event.
  EXPECT_TRUE(b.on_success());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.admit(), CircuitBreaker::Decision::kProceed);
}

// --- batched request layer ---------------------------------------------------

TEST(RequestLayerBatchTest, BatchLevelFaultRetriesWholeBatchOnce) {
  storage::ProviderRegistry registry = flat_registry(2);
  auto plan = std::make_shared<FaultPlan>();
  FaultEpisode ep;
  ep.provider = 0;
  ep.kind = FaultKind::kCrash;
  ep.begin = 0;
  ep.end = 1;  // exactly the first request fails
  plan->episodes.push_back(ep);
  registry.apply_fault_plan(plan);

  core::RequestLayer rt(registry, core::RetryPolicy{}, nullptr, 0xBA7C);
  const Bytes a = payload_of(100, 1);
  const Bytes b = payload_of(200, 2);
  const Bytes c = payload_of(300, 3);
  const core::RequestLayer::BatchOutcome out =
      rt.put_many(0, {{1, a}, {2, b}, {3, c}});
  ASSERT_EQ(out.statuses.size(), 3u);
  for (const Status& st : out.statuses) EXPECT_TRUE(st.ok());
  // The batch-level fault failed the whole first RPC; one retry re-sent
  // the batch -- two round trips total, never one per item.
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_FALSE(out.fail_fast);
  EXPECT_GT(out.time.count(), 0);
  EXPECT_EQ(registry.at(0).fault_requests(), 2u);
  EXPECT_EQ(registry.at(0).counters().puts.load(), 3u);
}

TEST(RequestLayerBatchTest, DefinitiveItemAnswersAreFinal) {
  storage::ProviderRegistry registry = flat_registry(1);
  core::RequestLayer rt(registry, core::RetryPolicy{}, nullptr, 0xD00D);
  const Bytes a = payload_of(64, 9);
  ASSERT_TRUE(rt.put_many(0, {{5, a}}).statuses[0].ok());
  const core::RequestLayer::BatchGetOutcome got = rt.get_many(0, {5, 404});
  // A per-item miss is a definitive answer, not a provider failure: the
  // retry budget must not be burned re-asking for it.
  EXPECT_EQ(got.attempts, 1u);
  EXPECT_EQ(got.retries, 0u);
  ASSERT_EQ(got.statuses.size(), 2u);
  ASSERT_TRUE(got.statuses[0].ok());
  ASSERT_TRUE(got.results[0].has_value());
  EXPECT_TRUE(equal(*got.results[0], a));
  EXPECT_EQ(got.statuses[1].code(), ErrorCode::kNotFound);
  EXPECT_FALSE(got.results[1].has_value());
}

TEST(RequestLayerBatchTest, OpenBreakerFailsBatchFast) {
  storage::ProviderRegistry registry = flat_registry(1);
  registry.set_breaker_config(storage::CircuitBreaker::Config{2, 8});
  registry.at(0).set_online(false);
  core::RetryPolicy policy;
  policy.max_attempts = 2;
  core::RequestLayer rt(registry, policy, nullptr, 0x0DD);
  const Bytes a = payload_of(32, 5);
  // Two failed batch RPCs trip the breaker...
  const core::RequestLayer::BatchOutcome first = rt.put_many(0, {{1, a}});
  EXPECT_EQ(first.attempts, 2u);
  EXPECT_TRUE(registry.quarantined(0));
  // ...and the next batch is rejected before any provider I/O.
  const core::RequestLayer::BatchOutcome second = rt.put_many(0, {{2, a}});
  EXPECT_TRUE(second.fail_fast);
  EXPECT_EQ(second.attempts, 0u);
  ASSERT_EQ(second.statuses.size(), 1u);
  EXPECT_EQ(second.statuses[0].code(), ErrorCode::kUnavailable);
  // Only the first call's two RPCs ever reached the provider.
  EXPECT_EQ(registry.at(0).fault_requests(), 2u);
}

// --- scripted end-to-end scenarios ------------------------------------------

TEST(ChaosScenarioTest, FlakyProvidersRecoverMidPut) {
  auto sink = std::make_shared<obs::Telemetry>(true);
  storage::ProviderRegistry registry = flat_registry(8);
  // Every provider's first request fails, its second succeeds: one flaky
  // burst that recovers mid-put.
  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 0x5EED;
  FaultEpisode ep;
  ep.provider = storage::kEveryProvider;
  ep.kind = FaultKind::kFlaky;
  ep.begin = 0;
  ep.end = 2;
  ep.period = 2;
  ep.burst = 1;
  plan->episodes.push_back(ep);
  registry.apply_fault_plan(plan);

  CloudDataDistributor cdd(registry, replay_config(sink));
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(800, 42);  // one PL3 chunk -> one stripe
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  OpReport report;
  ASSERT_TRUE(cdd.put_file("C", "pw", "f", data, opts, &report).ok());

  // RAID-5 over k=3: exactly 4 shards on 4 distinct fresh providers, each
  // failing its first request -- exactly 4 retries, nothing re-placed.
  EXPECT_EQ(report.retries, 4u);
  EXPECT_EQ(report.replaced_shards, 0u);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(sink->metrics().counter("rt.retries").value(), 4u);
  EXPECT_EQ(sink->metrics().counter("rt.giveups").value(), 0u);
  std::uint64_t injected = 0;
  for (ProviderIndex p = 0; p < registry.size(); ++p) {
    injected += registry.at(p).counters().injected_failures.load();
  }
  EXPECT_EQ(injected, 4u);

  Result<Bytes> back = cdd.get_file("C", "pw", "f");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
}

TEST(ChaosScenarioTest, SlowProviderTriggersHedgedRead) {
  auto sink = std::make_shared<obs::Telemetry>(true);
  storage::ProviderRegistry registry = flat_registry(8);
  DistributorConfig config = replay_config(sink);
  config.retry.hedge_min_samples = 4;  // arm hedging after a short warm-up
  CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(3 * 1024, 7);  // 3 chunks -> pipelined reads
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(cdd.put_file("C", "pw", "f", data, opts).ok());

  // Warm every provider's get_ns histogram with fault-free reads. The
  // slow fetch itself lands in the histogram before the hedge decision
  // reads it, so the fast history must be deep enough that one outlier
  // cannot drag its own p95 up past the hedge threshold.
  for (int i = 0; i < 24; ++i) {
    Result<Bytes> warm = cdd.get_file("C", "pw", "f");
    ASSERT_TRUE(warm.ok()) << warm.status().to_string();
  }

  // Find where chunk 0's first data shard lives and make that provider 8x
  // slower than its own history.
  const auto refs = cdd.metadata().file_chunks("C", "f");
  ASSERT_FALSE(refs.empty());
  Result<core::ChunkEntry> entry =
      cdd.metadata().chunk_entry(refs.front().chunk_index);
  ASSERT_TRUE(entry.ok());
  const ProviderIndex laggard = entry.value().stripe.front().provider;
  auto plan = std::make_shared<FaultPlan>();
  FaultEpisode ep;
  ep.provider = laggard;
  ep.kind = FaultKind::kSlow;
  ep.slow_factor = 8.0;
  plan->episodes.push_back(ep);
  registry.apply_fault_plan(plan);

  OpReport report;
  Result<Bytes> back = cdd.get_file("C", "pw", "f", &report);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
  // Slowness is not failure: the read hedged, it did not retry or fall
  // back to parity reconstruction.
  EXPECT_GE(report.hedges, 1u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(sink->metrics().counter("cdd.hedged_reads").value(),
            report.hedges);
  EXPECT_EQ(sink->metrics().counter("cdd.parity_fallbacks").value(), 0u);
}

TEST(ChaosScenarioTest, BreakerOpensThenHalfOpenProbeHeals) {
  auto sink = std::make_shared<obs::Telemetry>(true);
  storage::ProviderRegistry registry = flat_registry(8);
  registry.set_breaker_config(CircuitBreaker::Config{2, 4});
  CloudDataDistributor cdd(registry, replay_config(sink));
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(800, 9);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(cdd.put_file("C", "pw", "f", data, opts).ok());

  const auto refs = cdd.metadata().file_chunks("C", "f");
  ASSERT_FALSE(refs.empty());
  Result<core::ChunkEntry> entry =
      cdd.metadata().chunk_entry(refs.front().chunk_index);
  ASSERT_TRUE(entry.ok());
  const ProviderIndex victim = entry.value().stripe.front().provider;

  // The victim crashes for its next 4 requests (sequence space), then
  // recovers. Breaker: trip after 2 consecutive failures, probe every 4th
  // rejection.
  auto plan = std::make_shared<FaultPlan>();
  FaultEpisode ep;
  ep.provider = victim;
  ep.kind = FaultKind::kCrash;
  ep.begin = 0;
  ep.end = 4;
  plan->episodes.push_back(ep);
  registry.apply_fault_plan(plan);  // also resets breaker state

  // Every read succeeds throughout -- parity covers the quarantined shard
  // -- and the breaker walks trip -> rejections -> failed probes ->
  // successful probe -> closed, entirely driven by request counts.
  int healed_at = -1;
  for (int i = 0; i < 20; ++i) {
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    ASSERT_TRUE(back.ok()) << "read " << i << ": "
                           << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), data));
    if (sink->metrics().counter("rt.breaker_closes").value() == 1) {
      healed_at = i;
      break;
    }
  }
  ASSERT_NE(healed_at, -1) << "breaker never healed";
  EXPECT_EQ(sink->metrics().counter("rt.breaker_trips").value(), 1u);
  EXPECT_EQ(sink->metrics().counter("rt.probes").value(), 3u);
  EXPECT_EQ(sink->metrics().counter("rt.breaker_closes").value(), 1u);
  EXPECT_GT(sink->metrics().counter("rt.fail_fast").value(), 0u);
  EXPECT_EQ(sink->metrics().gauge("rt.open_breakers").value(), 0);
  EXPECT_FALSE(registry.quarantined(victim));
}

TEST(ChaosScenarioTest, RepairHealsQuarantinedStripes) {
  auto sink = std::make_shared<obs::Telemetry>(true);
  storage::ProviderRegistry registry = flat_registry(8);
  registry.set_breaker_config(CircuitBreaker::Config{2, 4});
  CloudDataDistributor cdd(registry, replay_config(sink));
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(800, 11);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(cdd.put_file("C", "pw", "f", data, opts).ok());

  const auto refs = cdd.metadata().file_chunks("C", "f");
  ASSERT_FALSE(refs.empty());
  Result<core::ChunkEntry> entry =
      cdd.metadata().chunk_entry(refs.front().chunk_index);
  ASSERT_TRUE(entry.ok());
  const ProviderIndex victim = entry.value().stripe.front().provider;

  // Permanent crash. One degraded read trips the breaker (2 consecutive
  // failures) -- the provider is quarantined.
  auto plan = std::make_shared<FaultPlan>();
  FaultEpisode ep;
  ep.provider = victim;
  ep.kind = FaultKind::kCrash;
  plan->episodes.push_back(ep);
  registry.apply_fault_plan(plan);
  Result<Bytes> degraded = cdd.get_file("C", "pw", "f");
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_TRUE(equal(degraded.value(), data));
  ASSERT_TRUE(registry.quarantined(victim));

  // Repair treats the quarantined provider's shards as lost (its open
  // breaker fails the single-attempt probe fast), reconstructs them from
  // the stripe, and re-homes them on healthy providers.
  Result<std::size_t> repaired = cdd.repair();
  ASSERT_TRUE(repaired.ok()) << repaired.status().to_string();
  EXPECT_EQ(repaired.value(), 1u);
  EXPECT_EQ(sink->metrics().counter("cdd.repaired_shards").value(), 1u);
  Result<core::ChunkEntry> healed =
      cdd.metadata().chunk_entry(refs.front().chunk_index);
  ASSERT_TRUE(healed.ok());
  for (const auto& loc : healed.value().stripe) {
    EXPECT_NE(loc.provider, victim);
  }
  // Full redundancy is back even though the victim never recovers.
  Result<Bytes> back = cdd.get_file("C", "pw", "f");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
}

// --- acceptance: 5% noise, zero client errors, byte-for-byte replay ---------

/// Everything the acceptance run must reproduce across replays. Spans are
/// normalized by stripping the two wall-clock fields (start_ns, wall_ns);
/// all modeled fields must match exactly.
struct AcceptanceRun {
  std::uint64_t rt_retries = 0;
  std::size_t put_retries = 0;
  std::size_t get_retries = 0;
  std::size_t put_replaced = 0;
  std::uint64_t injected = 0;
  std::string spans;
};

std::string normalize_spans(const std::string& jsonl) {
  static const std::regex kWallClock("\"(start_ns|wall_ns)\":-?[0-9]+,?");
  return std::regex_replace(jsonl, kWallClock, "");
}

AcceptanceRun run_acceptance(std::uint64_t fault_seed,
                             std::optional<ProtectionMode> protection = {}) {
  auto sink = std::make_shared<obs::Telemetry>(true);
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  registry.apply_fault_plan(
      std::make_shared<FaultPlan>(FaultPlan::transient(fault_seed, 0.05)));
  CloudDataDistributor cdd(registry, replay_config(sink));
  EXPECT_TRUE(cdd.register_client("C").ok());
  EXPECT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());

  // 256 PL2 chunks (4 KiB each) under 5% transient noise: the layer must
  // absorb every fault -- zero client-visible errors.
  const Bytes data = payload_of(256 * 4096, 2026);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  opts.protection = protection;
  OpReport put_report;
  const Status put = cdd.put_file("C", "pw", "big", data, opts, &put_report);
  EXPECT_TRUE(put.ok()) << put.to_string();
  OpReport get_report;
  Result<Bytes> back = cdd.get_file("C", "pw", "big", &get_report);
  EXPECT_TRUE(back.ok()) << back.status().to_string();
  if (back.ok()) EXPECT_TRUE(equal(back.value(), data));
  EXPECT_EQ(sink->metrics().counter("cdd.put_file_errors").value(), 0u);
  EXPECT_EQ(sink->metrics().counter("cdd.get_file_errors").value(), 0u);

  AcceptanceRun run;
  run.rt_retries = sink->metrics().counter("rt.retries").value();
  run.put_retries = put_report.retries;
  run.get_retries = get_report.retries;
  run.put_replaced = put_report.replaced_shards;
  for (ProviderIndex p = 0; p < registry.size(); ++p) {
    run.injected += registry.at(p).counters().injected_failures.load();
  }
  run.spans = normalize_spans(sink->tracer().to_jsonl());
  return run;
}

TEST(ChaosAcceptanceTest, TransientNoiseAbsorbedAndReplaysByteForByte) {
  const AcceptanceRun first = run_acceptance(0xACCE97);
  // The faults really happened and the layer really worked.
  EXPECT_GT(first.injected, 0u);
  EXPECT_GT(first.rt_retries, 0u);
  EXPECT_GT(first.put_retries + first.get_retries, 0u);

  // Same seed: identical retry counts and an identical span stream modulo
  // wall-clock fields.
  const AcceptanceRun replay = run_acceptance(0xACCE97);
  EXPECT_EQ(replay.rt_retries, first.rt_retries);
  EXPECT_EQ(replay.put_retries, first.put_retries);
  EXPECT_EQ(replay.get_retries, first.get_retries);
  EXPECT_EQ(replay.put_replaced, first.put_replaced);
  EXPECT_EQ(replay.injected, first.injected);
  EXPECT_EQ(replay.spans, first.spans);

  // Different seed: a different fault pattern (the seed is live).
  const AcceptanceRun other = run_acceptance(0x0DD5EED);
  EXPECT_NE(other.spans, first.spans);
}

// --- protection-mode axis (PR 8) --------------------------------------------
//
// The protection transform is length-preserving and its nonce is drawn from
// the chunk RNG in every mode, so the fault-plan clock -- provider request
// sequences, latency draws, retry decisions -- is byte-identical whichever
// transform a chunk carries. These tests pin that invariant: chaos behavior
// must never depend on the protection mode.

constexpr ProtectionMode kAllModes[] = {ProtectionMode::kPartialAes,
                                        ProtectionMode::kMisleadingBytes,
                                        ProtectionMode::kFragmentation};

TEST(ChaosProtectionModeTest, TransientNoiseRetriesIdenticalAcrossModes) {
  const AcceptanceRun baseline =
      run_acceptance(0xACCE97, ProtectionMode::kPartialAes);
  EXPECT_GT(baseline.injected, 0u);
  for (ProtectionMode mode : kAllModes) {
    const AcceptanceRun run = run_acceptance(0xACCE97, mode);
    const char* name = protection_mode_name(mode).data();
    EXPECT_EQ(run.rt_retries, baseline.rt_retries) << name;
    EXPECT_EQ(run.put_retries, baseline.put_retries) << name;
    EXPECT_EQ(run.get_retries, baseline.get_retries) << name;
    EXPECT_EQ(run.put_replaced, baseline.put_replaced) << name;
    EXPECT_EQ(run.injected, baseline.injected) << name;
    // The whole modeled span stream replays byte-for-byte too: same shard
    // sizes, same providers, same outcomes -- only payload bytes differ.
    EXPECT_EQ(run.spans, baseline.spans) << name;
  }
}

TEST(ChaosProtectionModeTest, FlakyAndCrashScenarioSurvivesEveryMode) {
  // Scripted plan: every provider's first request fails (flaky burst that
  // recovers), and provider 2 is crashed for a window covering the put.
  // Fragmentation puts must ride it out exactly like partial-AES ones.
  struct Outcome {
    std::size_t retries = 0;
    std::size_t replaced = 0;
    std::uint64_t injected = 0;
    bool round_trip = false;
  };
  auto run_mode = [&](ProtectionMode mode) {
    auto sink = std::make_shared<obs::Telemetry>(true);
    storage::ProviderRegistry registry = flat_registry(8);
    auto plan = std::make_shared<FaultPlan>();
    plan->seed = 0x5EED;
    FaultEpisode flaky;
    flaky.provider = storage::kEveryProvider;
    flaky.kind = FaultKind::kFlaky;
    flaky.begin = 0;
    flaky.end = 2;
    flaky.period = 2;
    flaky.burst = 1;
    plan->episodes.push_back(flaky);
    FaultEpisode crash;
    crash.provider = 2;
    crash.kind = FaultKind::kCrash;
    crash.begin = 0;
    crash.end = 64;
    plan->episodes.push_back(crash);
    registry.apply_fault_plan(plan);

    CloudDataDistributor cdd(registry, replay_config(sink));
    EXPECT_TRUE(cdd.register_client("C").ok());
    EXPECT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
    const Bytes data = payload_of(800, 42);  // one PL3 chunk -> one stripe
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    opts.protection = mode;
    OpReport report;
    Outcome out;
    const Status put = cdd.put_file("C", "pw", "f", data, opts, &report);
    EXPECT_TRUE(put.ok()) << put.to_string();
    out.retries = report.retries;
    out.replaced = report.replaced_shards;
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      out.injected += registry.at(p).counters().injected_failures.load();
    }
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    EXPECT_TRUE(back.ok()) << back.status().to_string();
    out.round_trip = back.ok() && equal(back.value(), data);
    return out;
  };

  const Outcome baseline = run_mode(ProtectionMode::kPartialAes);
  EXPECT_TRUE(baseline.round_trip);
  EXPECT_GT(baseline.injected, 0u);
  for (ProtectionMode mode : kAllModes) {
    const Outcome out = run_mode(mode);
    const char* name = protection_mode_name(mode).data();
    EXPECT_TRUE(out.round_trip) << name;
    EXPECT_EQ(out.retries, baseline.retries) << name;
    EXPECT_EQ(out.replaced, baseline.replaced) << name;
    EXPECT_EQ(out.injected, baseline.injected) << name;
  }
}

TEST(ChaosScenarioTest, ProviderLossDuringDrainMigration) {
  // A bystander provider crashes permanently while another provider is
  // being drained. The invariants: no read ever fails or returns wrong
  // bytes (RAID absorbs the loss), the migrator reports the shards it
  // could not place instead of committing a half-done drain, and once the
  // bystander is healed the re-run converges and empties the subject --
  // the copy-commit-delete ordering means the interrupted pass left
  // duplicates at worst, never holes.
  auto sink = std::make_shared<obs::Telemetry>(true);
  storage::ProviderRegistry registry = flat_registry(8);
  CloudDataDistributor cdd(registry, replay_config(sink));
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(6000, 77);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(cdd.put_file("C", "pw", "f", data, opts).ok());

  auto shards_on = [&cdd](ProviderIndex p) {
    std::size_t n = 0;
    for (const core::ChunkEntry& entry : cdd.metadata().chunk_table()) {
      if (entry.deleted) continue;
      for (const core::ShardLocation& loc : entry.stripe) {
        if (loc.provider == p) ++n;
      }
    }
    return n;
  };
  ProviderIndex subject = 0;
  for (ProviderIndex p = 1; p < registry.size(); ++p) {
    if (shards_on(p) > shards_on(subject)) subject = p;
  }
  ASSERT_GT(shards_on(subject), 0u);
  const ProviderIndex bystander = (subject + 1) % registry.size();

  auto plan = std::make_shared<FaultPlan>();
  FaultEpisode ep;
  ep.provider = bystander;
  ep.kind = FaultKind::kCrash;
  plan->episodes.push_back(ep);
  registry.apply_fault_plan(plan);

  // Drain with the fleet degraded: a pass either commits (the ring routed
  // every shard around the dead provider) or pauses with the remainder.
  core::Migrator migrator(cdd);
  Result<core::Migrator::Report> pass =
      migrator.run(core::MigrationKind::kDrain, subject);
  if (!pass.ok()) {
    EXPECT_EQ(pass.status().code(), ErrorCode::kResourceExhausted)
        << pass.status().to_string();
  }
  EXPECT_EQ(registry.lifecycle(subject), ProviderLifecycle::kDraining);

  // Availability during the degraded drain.
  Result<Bytes> degraded = cdd.get_file("C", "pw", "f");
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_TRUE(equal(degraded.value(), data));

  // Heal the bystander and converge.
  registry.clear_fault_plan();
  registry.breaker(bystander).reset();
  bool committed = pass.ok() && pass.value().committed;
  for (int attempt = 0; attempt < 4 && !committed; ++attempt) {
    pass = migrator.run(core::MigrationKind::kDrain, subject);
    committed = pass.ok() && pass.value().committed;
  }
  ASSERT_TRUE(committed) << "drain did not converge after heal";
  EXPECT_EQ(shards_on(subject), 0u);
  Result<Bytes> back = cdd.get_file("C", "pw", "f");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
}

}  // namespace
}  // namespace cshield

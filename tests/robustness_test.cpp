// Robustness suite: exhaustive parameter sweeps over the distributor's
// configuration space, concurrent multi-client stress, and fuzz-style
// garbage-input tests for every deserializer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <tuple>

#include "core/distributor.hpp"
#include "core/metadata_io.hpp"
#include "core/misleading.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"
#include "workload/records.hpp"

namespace cshield {
namespace {

using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// --- parameterized end-to-end round trip -------------------------------------
//
// Every combination of RAID level x privacy level x chaff fraction x file
// size must round-trip byte-identically, survive the number of provider
// outages its code tolerates, and fail closed one outage beyond.

struct RoundTripCase {
  raid::RaidLevel level;
  int privacy;        // 0..3
  double misleading;  // chaff fraction
  std::size_t size;   // file bytes
};

class DistributorRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(DistributorRoundTrip, ExactRecoveryUnderToleratedOutages) {
  const RoundTripCase& p = GetParam();
  // All providers PL3 so every privacy level has a full fleet.
  storage::ProviderRegistry registry;
  for (int i = 0; i < 8; ++i) {
    storage::ProviderDescriptor d;
    d.name = "P" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = static_cast<CostLevel>(i % 4);
    registry.add(std::move(d));
  }
  DistributorConfig config;
  config.default_raid = p.level;
  config.stripe_data_shards = 3;
  config.replication = 2;
  config.misleading_fraction = p.misleading;
  CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());

  const Bytes data = payload_of(p.size, p.size + 31 * p.privacy);
  PutOptions opts;
  opts.privacy_level = privacy_level_from_int(p.privacy);
  ASSERT_TRUE(cdd.put_file("C", "pw", "f", data, opts).ok());

  // Healthy read.
  {
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), data));
  }
  // Reads under exactly-tolerated outages.
  const raid::StripeLayout layout =
      p.level == raid::RaidLevel::kRaid1
          ? raid::StripeLayout::make(p.level, 1, config.replication)
          : raid::StripeLayout::make(p.level, config.stripe_data_shards);
  const std::size_t tolerance = layout.fault_tolerance();
  for (std::size_t down = 0; down < tolerance; ++down) {
    registry.at(down).set_online(false);
  }
  {
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    ASSERT_TRUE(back.ok())
        << "with " << tolerance << " providers down: "
        << back.status().to_string();
    EXPECT_TRUE(equal(back.value(), data));
  }
  // One more outage than tolerated: reads must fail closed (never return
  // wrong bytes) whenever the extra-down provider actually held shards.
  registry.at(tolerance).set_online(false);
  {
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    if (back.ok()) {
      EXPECT_TRUE(equal(back.value(), data))
          << "a successful read must still be correct";
    }
  }
}

std::string round_trip_name(
    const ::testing::TestParamInfo<RoundTripCase>& info) {
  const auto& p = info.param;
  std::string s{raid::raid_level_name(p.level)};
  s += "_pl" + std::to_string(p.privacy);
  s += "_m" + std::to_string(static_cast<int>(p.misleading * 100));
  s += "_n" + std::to_string(p.size);
  return s;
}

std::vector<RoundTripCase> round_trip_cases() {
  std::vector<RoundTripCase> cases;
  for (auto level : {raid::RaidLevel::kNone, raid::RaidLevel::kRaid0,
                     raid::RaidLevel::kRaid1, raid::RaidLevel::kRaid5,
                     raid::RaidLevel::kRaid6}) {
    for (int pl : {0, 3}) {
      for (double m : {0.0, 0.15}) {
        for (std::size_t n : {0u, 1u, 3000u, 70001u}) {
          cases.push_back({level, pl, m, n});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributorRoundTrip,
                         ::testing::ValuesIn(round_trip_cases()),
                         round_trip_name);

// --- fault-episode sweep -------------------------------------------------------
//
// Every RAID level x every FaultPlan episode kind: the operation either
// succeeds with byte-identical data or fails with a clean typed error --
// never wrong bytes, never a partially-registered file. Bounded faults
// (crash/slow/flaky on 2 of 8 providers) must be absorbed outright: the
// request layer retries transients, re-places shards off crashed
// providers, and rides out flaky bursts shorter than its attempt budget.

struct FaultSweepCase {
  raid::RaidLevel level;
  const char* kind;
};

class DistributorFaultSweep : public ::testing::TestWithParam<FaultSweepCase> {
};

std::shared_ptr<storage::FaultPlan> fault_plan_for(const std::string& kind) {
  auto plan = std::make_shared<storage::FaultPlan>();
  plan->seed = 0xFA5EED;
  if (kind == "crash_all") {
    storage::FaultEpisode ep;
    ep.kind = storage::FaultKind::kCrash;  // provider defaults to wildcard
    plan->episodes.push_back(ep);
    return plan;
  }
  for (ProviderIndex p = 0; p < 2; ++p) {  // providers 0 and 1 misbehave
    storage::FaultEpisode ep;
    ep.provider = p;
    if (kind == "transient") {
      ep.kind = storage::FaultKind::kTransient;
      ep.probability = 0.5;
    } else if (kind == "crash") {
      ep.kind = storage::FaultKind::kCrash;
    } else if (kind == "slow") {
      ep.kind = storage::FaultKind::kSlow;
      ep.slow_factor = 6.0;
    } else {
      ep.kind = storage::FaultKind::kFlaky;
      ep.period = 4;
      ep.burst = 2;  // 2 consecutive failures < the 4-attempt budget
    }
    plan->episodes.push_back(ep);
  }
  return plan;
}

TEST_P(DistributorFaultSweep, SucceedsOrFailsCleanNeverPartial) {
  const FaultSweepCase& p = GetParam();
  storage::ProviderRegistry registry;
  for (int i = 0; i < 8; ++i) {
    storage::ProviderDescriptor d;
    d.name = "P" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = static_cast<CostLevel>(i % 4);
    registry.add(std::move(d));
  }
  DistributorConfig config;
  config.default_raid = p.level;
  config.stripe_data_shards = 3;
  config.replication = 2;
  config.worker_threads = 1;  // deterministic request order per provider
  config.io_threads = 1;
  config.pipelined = true;
  CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  registry.apply_fault_plan(fault_plan_for(p.kind));

  const Bytes data = payload_of(9000, 0xF0 + static_cast<int>(p.level));
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  const Status put = cdd.put_file("C", "pw", "f", data, opts);

  if (!put.ok()) {
    // A failed put must be a clean typed error with all-or-nothing
    // metadata: no chunk refs, and reads say the file does not exist.
    EXPECT_TRUE(put.code() == ErrorCode::kUnavailable ||
                put.code() == ErrorCode::kResourceExhausted)
        << put.to_string();
    EXPECT_TRUE(cdd.metadata().file_chunks("C", "f").empty());
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    ASSERT_FALSE(back.ok());
    EXPECT_EQ(back.status().code(), ErrorCode::kNotFound);
    if (std::string(p.kind) == "crash_all") {
      // Crashes fire before anything lands in the object store.
      for (ProviderIndex i = 0; i < registry.size(); ++i) {
        EXPECT_EQ(registry.at(i).object_count(), 0u);
      }
    }
    return;
  }
  ASSERT_STRNE(p.kind, "crash_all") << "an all-provider crash cannot succeed";

  Result<Bytes> back = cdd.get_file("C", "pw", "f");
  if (back.ok()) {
    EXPECT_TRUE(equal(back.value(), data));
  } else {
    EXPECT_TRUE(back.status().code() == ErrorCode::kUnavailable ||
                back.status().code() == ErrorCode::kResourceExhausted ||
                back.status().code() == ErrorCode::kCorrupted)
        << back.status().to_string();
  }
  // Only unbounded random noise may fail at all; scripted crash/slow/flaky
  // on 2 of 8 providers must be fully absorbed.
  if (std::string(p.kind) != "transient") {
    EXPECT_TRUE(put.ok());
    EXPECT_TRUE(back.ok()) << back.status().to_string();
  }
}

std::string fault_sweep_name(
    const ::testing::TestParamInfo<FaultSweepCase>& info) {
  return std::string(raid::raid_level_name(info.param.level)) + "_" +
         info.param.kind;
}

std::vector<FaultSweepCase> fault_sweep_cases() {
  std::vector<FaultSweepCase> cases;
  for (auto level : {raid::RaidLevel::kRaid0, raid::RaidLevel::kRaid1,
                     raid::RaidLevel::kRaid5, raid::RaidLevel::kRaid6}) {
    for (const char* kind :
         {"transient", "crash", "slow", "flaky", "crash_all"}) {
      cases.push_back({level, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Faults, DistributorFaultSweep,
                         ::testing::ValuesIn(fault_sweep_cases()),
                         fault_sweep_name);

// --- concurrency stress --------------------------------------------------------

TEST(ConcurrencyTest, ParallelClientsDoNotInterfere) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.05;
  config.worker_threads = 4;
  CloudDataDistributor cdd(registry, config);

  constexpr int kThreads = 8;
  constexpr int kFilesPerThread = 6;
  // Register clients up front (registration itself is also thread-safe,
  // but this test focuses on the data path).
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(cdd.register_client("client" + std::to_string(t)).ok());
    ASSERT_TRUE(cdd.add_password("client" + std::to_string(t), "pw",
                                 PrivacyLevel::kHigh)
                    .ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string client = "client" + std::to_string(t);
      for (int f = 0; f < kFilesPerThread; ++f) {
        const Bytes data =
            payload_of(500 + static_cast<std::size_t>(f) * 997,
                       static_cast<std::uint64_t>(t * 100 + f));
        const std::string name = "f" + std::to_string(f);
        PutOptions opts;
        opts.privacy_level = PrivacyLevel::kModerate;
        if (!cdd.put_file(client, "pw", name, data, opts).ok()) {
          failures.fetch_add(1);
          continue;
        }
        Result<Bytes> back = cdd.get_file(client, "pw", name);
        if (!back.ok() || !equal(back.value(), data)) {
          failures.fetch_add(1);
        }
        if (f % 2 == 0) {
          if (!cdd.remove_file(client, "pw", name).ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Remaining files all still read correctly after the storm.
  for (int t = 0; t < kThreads; ++t) {
    const std::string client = "client" + std::to_string(t);
    for (int f = 1; f < kFilesPerThread; f += 2) {
      const Bytes expected =
          payload_of(500 + static_cast<std::size_t>(f) * 997,
                     static_cast<std::uint64_t>(t * 100 + f));
      Result<Bytes> back =
          cdd.get_file(client, "pw", "f" + std::to_string(f));
      ASSERT_TRUE(back.ok()) << client << "/f" << f;
      EXPECT_TRUE(equal(back.value(), expected));
    }
  }
}

TEST(ConcurrencyTest, ParallelReadsOfOneFile) {
  storage::ProviderRegistry registry = storage::make_default_registry(8);
  CloudDataDistributor cdd(registry, DistributorConfig{});
  ASSERT_TRUE(cdd.register_client("C").ok());
  ASSERT_TRUE(cdd.add_password("C", "pw", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(60000, 1);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kLow;
  ASSERT_TRUE(cdd.put_file("C", "pw", "hot", data, opts).ok());

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        Result<Bytes> back = cdd.get_file("C", "pw", "hot");
        if (!back.ok() || !equal(back.value(), data)) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
}

// --- fuzz-style garbage input ----------------------------------------------------

TEST(FuzzTest, MetadataDeserializerNeverCrashesOnGarbage) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes garbage(rng.below(300));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    // Must return an error (or, astronomically unlikely, parse) -- never
    // crash or hang.
    (void)core::deserialize_metadata(garbage);
  }
}

TEST(FuzzTest, MetadataDeserializerSurvivesBitFlips) {
  core::MetadataStore store;
  store.register_provider("P", PrivacyLevel::kHigh, CostLevel::kCheap);
  (void)store.register_client("C");
  (void)store.add_password("C", "pw", PrivacyLevel::kHigh);
  core::ChunkEntry e;
  e.stripe = {{0, 1}};
  e.shard_digests.resize(1);
  (void)store.add_chunk("C", "f", 0, e);
  const Bytes image = core::serialize_metadata(store);

  Rng rng(0xF1B);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes mutated = image;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    Result<std::shared_ptr<core::MetadataStore>> r =
        core::deserialize_metadata(mutated);
    // Either rejected or parsed into *some* store; both fine, no crash.
    (void)r;
  }
}

TEST(FuzzTest, DatasetDeserializerNeverCrashes) {
  Rng rng(0xF0D5);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes garbage(rng.below(200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    (void)workload::deserialize_dataset(garbage);
  }
}

TEST(FuzzTest, MisleadingStripRejectsCorruptPositions) {
  // Positions beyond the buffer violate the codec's contract; the codec
  // must throw (precondition), not read out of bounds.
  const Bytes data = payload_of(100, 9);
  EXPECT_THROW(
      (void)core::MisleadingCodec::strip(data, {50, 200}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)core::MisleadingCodec::strip(Bytes{}, {0}),
      std::invalid_argument);
}

TEST(FuzzTest, RecordDecodePrefixHandlesArbitraryBytes) {
  workload::RecordCodec codec({"a", "b", "c"});
  Rng rng(0xF0AD);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage(rng.below(codec.record_size() * 10));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    const mining::Dataset rows = codec.decode_prefix(garbage);
    EXPECT_EQ(rows.num_rows(), garbage.size() / codec.record_size());
  }
}

}  // namespace
}  // namespace cshield

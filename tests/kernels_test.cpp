// Differential tests for the runtime-dispatched GF(256)/XOR kernel layer
// (crypto/gf256_kernels.hpp). Every arm the host can execute is swept
// against the mul_slow ground truth over all 256 coefficients, every tail
// length 0..67, and every src/dst misalignment 0..15, and all arms must be
// bit-identical to each other. The dispatched entry points, the arm
// override, and the work counters are covered as well.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/gf256.hpp"
#include "crypto/gf256_kernels.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

namespace cshield::gf256::kernels {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::vector<Arm> available_arms() {
  std::vector<Arm> arms;
  for (Arm a : {Arm::kScalar, Arm::kSwar, Arm::kSsse3, Arm::kAvx2}) {
    if (arm_available(a)) arms.push_back(a);
  }
  return arms;
}

std::string arm_label(Arm a) { return std::string(cpu::simd_level_name(a)); }

// --- ground truth -----------------------------------------------------------

TEST(KernelArmsTest, ScalarAndSwarAlwaysAvailable) {
  EXPECT_TRUE(arm_available(Arm::kScalar));
  EXPECT_TRUE(arm_available(Arm::kSwar));
}

// Every available arm, all 256 coefficients, all lengths 0..67: matches
// dst[i] ^ mul_slow(c, src[i]) byte for byte. Lengths past 64 cover every
// tail combination of the 64/32/16/8-byte inner loops.
TEST(KernelDifferentialTest, MulAddMatchesMulSlowAllCoeffsAndTails) {
  const Bytes src = random_bytes(67, 101);
  const Bytes dst0 = random_bytes(67, 202);
  for (Arm arm : available_arms()) {
    for (unsigned c = 0; c < 256; ++c) {
      for (std::size_t n = 0; n <= 67; ++n) {
        Bytes expected(dst0.begin(), dst0.begin() + static_cast<long>(n));
        for (std::size_t i = 0; i < n; ++i) {
          expected[i] = static_cast<std::uint8_t>(
              expected[i] ^ mul_slow(static_cast<std::uint8_t>(c), src[i]));
        }
        Bytes dst(dst0.begin(), dst0.begin() + static_cast<long>(n));
        mul_add_arm(arm, static_cast<std::uint8_t>(c), src.data(), dst.data(),
                    n);
        ASSERT_TRUE(equal(dst, expected))
            << arm_label(arm) << " c=" << c << " n=" << n;
      }
    }
  }
}

TEST(KernelDifferentialTest, XorMatchesReferenceAllTails) {
  const Bytes src = random_bytes(67, 303);
  const Bytes dst0 = random_bytes(67, 404);
  for (Arm arm : available_arms()) {
    for (std::size_t n = 0; n <= 67; ++n) {
      Bytes expected(dst0.begin(), dst0.begin() + static_cast<long>(n));
      for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
      Bytes dst(dst0.begin(), dst0.begin() + static_cast<long>(n));
      xor_into_arm(arm, dst.data(), src.data(), n);
      ASSERT_TRUE(equal(dst, expected)) << arm_label(arm) << " n=" << n;
    }
  }
}

// Misaligned src and dst in every 16-byte phase combination: the SIMD arms
// use unaligned loads/stores, so every offset pair must agree with scalar.
TEST(KernelDifferentialTest, UnalignedOffsetsMatchScalar) {
  constexpr std::size_t kLen = 96;
  const Bytes src = random_bytes(kLen + 16, 505);
  const Bytes dst0 = random_bytes(kLen + 16, 606);
  for (Arm arm : available_arms()) {
    for (std::size_t so = 0; so < 16; ++so) {
      for (std::size_t do_ = 0; do_ < 16; ++do_) {
        for (std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1},
                               std::uint8_t{2}, std::uint8_t{0x8E},
                               std::uint8_t{0xFF}}) {
          Bytes expected = dst0;
          mul_add_arm(Arm::kScalar, c, src.data() + so, expected.data() + do_,
                      kLen);
          Bytes dst = dst0;
          mul_add_arm(arm, c, src.data() + so, dst.data() + do_, kLen);
          ASSERT_TRUE(equal(dst, expected))
              << arm_label(arm) << " src+" << so << " dst+" << do_
              << " c=" << unsigned{c};
        }
        Bytes expected = dst0;
        xor_into_arm(Arm::kScalar, expected.data() + do_, src.data() + so,
                     kLen);
        Bytes dst = dst0;
        xor_into_arm(arm, dst.data() + do_, src.data() + so, kLen);
        ASSERT_TRUE(equal(dst, expected))
            << arm_label(arm) << " xor src+" << so << " dst+" << do_;
      }
    }
  }
}

// Long buffers (several vector blocks plus a ragged tail) across arms.
TEST(KernelDifferentialTest, LongBuffersIdenticalAcrossArms) {
  const std::size_t n = 64 * 1024 + 31;
  const Bytes src = random_bytes(n, 707);
  const Bytes dst0 = random_bytes(n, 808);
  for (std::uint8_t c : {std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{0xB7}}) {
    Bytes reference = dst0;
    mul_add_arm(Arm::kScalar, c, src.data(), reference.data(), n);
    for (Arm arm : available_arms()) {
      Bytes dst = dst0;
      mul_add_arm(arm, c, src.data(), dst.data(), n);
      EXPECT_TRUE(equal(dst, reference)) << arm_label(arm) << " c=" << unsigned{c};
    }
  }
}

// --- field properties through the bulk kernel -------------------------------

TEST(KernelPropertyTest, MulAddTwiceCancels) {
  const std::size_t n = 4096 + 7;
  const Bytes src = random_bytes(n, 909);
  for (Arm arm : available_arms()) {
    Bytes dst = random_bytes(n, 1010);
    const Bytes orig = dst;
    mul_add_arm(arm, 0x53, src.data(), dst.data(), n);
    EXPECT_FALSE(equal(dst, orig));
    mul_add_arm(arm, 0x53, src.data(), dst.data(), n);  // GF(2^n): + == -
    EXPECT_TRUE(equal(dst, orig)) << arm_label(arm);
  }
}

TEST(KernelPropertyTest, CoefficientOneIsXor) {
  const std::size_t n = 1000;
  const Bytes src = random_bytes(n, 111);
  for (Arm arm : available_arms()) {
    Bytes a = random_bytes(n, 222);
    Bytes b = a;
    mul_add_arm(arm, 1, src.data(), a.data(), n);
    xor_into_arm(arm, b.data(), src.data(), n);
    EXPECT_TRUE(equal(a, b)) << arm_label(arm);
  }
}

TEST(KernelPropertyTest, MulGMatchesExpTable) {
  std::uint8_t coeff = 1;
  for (unsigned i = 0; i < 512; ++i) {
    EXPECT_EQ(coeff, exp(i)) << "i=" << i;
    coeff = mul_g(coeff);
  }
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(mul_g(static_cast<std::uint8_t>(a)),
              mul_slow(static_cast<std::uint8_t>(a), 2));
  }
}

// --- dispatch and override --------------------------------------------------

TEST(KernelDispatchTest, ActiveArmIsAvailableAndSwitchable) {
  const Arm original = active_arm();
  EXPECT_TRUE(arm_available(original));
  for (Arm arm : available_arms()) {
    set_active_arm(arm);
    EXPECT_EQ(active_arm(), arm);
    // Dispatched calls agree with the direct arm call.
    const Bytes src = random_bytes(100, 333);
    Bytes a = random_bytes(100, 444);
    Bytes b = a;
    mul_add(0x1D, src.data(), a.data(), 100);
    mul_add_arm(arm, 0x1D, src.data(), b.data(), 100);
    EXPECT_TRUE(equal(a, b)) << arm_label(arm);
  }
  set_active_arm(original);
}

TEST(KernelDispatchTest, ForceScalarEnvIsHonored) {
  // The env var is read once at startup; this test asserts consistency
  // rather than re-reading: under CSHIELD_FORCE_SCALAR the preferred level
  // must be scalar (or swar), otherwise it must match the hardware.
  const char* force = std::getenv("CSHIELD_FORCE_SCALAR");
  if (force != nullptr && std::string_view(force) != "0") {
    const cpu::SimdLevel lvl = cpu::preferred_level();
    EXPECT_TRUE(lvl == cpu::SimdLevel::kScalar || lvl == cpu::SimdLevel::kSwar);
  } else {
    EXPECT_EQ(cpu::preferred_level(), cpu::hardware_level());
  }
}

TEST(KernelDispatchTest, SetUnavailableArmThrows) {
  if (!arm_available(Arm::kAvx2)) {
    EXPECT_THROW((void)set_active_arm(Arm::kAvx2), std::invalid_argument);
  } else {
    GTEST_SKIP() << "host has AVX2; nothing unavailable to probe";
  }
}

// --- work accounting --------------------------------------------------------

TEST(KernelStatsTest, CountsBytesByPrimitive) {
  reset_work_stats();
  const Bytes src = random_bytes(512, 555);
  Bytes dst = random_bytes(512, 666);
  xor_into(dst.data(), src.data(), 512);
  mul_add(0x02, src.data(), dst.data(), 512);
  mul_add(0x00, src.data(), dst.data(), 512);  // no-op: no work counted
  mul_add(0x01, src.data(), dst.data(), 512);  // degrades to XOR
  const WorkStats w = work_stats();
  EXPECT_EQ(w.xor_bytes, 1024u);
  EXPECT_EQ(w.mul_bytes, 512u);
  reset_work_stats();
  const WorkStats z = work_stats();
  EXPECT_EQ(z.xor_bytes + z.mul_bytes, 0u);
}

// --- util-level SWAR xor_into ----------------------------------------------

TEST(BytesXorTest, SwarXorIntoMatchesByteLoop) {
  for (std::size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 63ul, 64ul, 65ul, 1000ul}) {
    const Bytes src = random_bytes(n, 777 + n);
    Bytes dst = random_bytes(n, 888 + n);
    Bytes expected = dst;
    for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
    cshield::xor_into(dst, src);
    EXPECT_TRUE(equal(dst, expected)) << "n=" << n;
  }
}

}  // namespace
}  // namespace cshield::gf256::kernels

// Durability tests: the disk-backed object store, metadata-table
// serialization, and a full distributor restart (new process = new
// CloudDataDistributor instance) against surviving providers.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <unistd.h>

#include "core/distributor.hpp"
#include "core/metadata_io.hpp"
#include "storage/disk_store.hpp"
#include "storage/provider.hpp"
#include "storage/provider_registry.hpp"

namespace cshield {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("cshield_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

Bytes payload_of(std::size_t n, std::uint64_t seed = 5) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// --- DiskStore ----------------------------------------------------------------

TEST(DiskStoreTest, PutGetRemoveRoundTrip) {
  TempDir dir;
  storage::DiskStore store(dir.path());
  const Bytes data = payload_of(5000);
  ASSERT_TRUE(store.put(0xABCD, data).ok());
  Result<Bytes> back = store.get(0xABCD);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), data));
  EXPECT_TRUE(store.contains(0xABCD));
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), 5000u);
  ASSERT_TRUE(store.remove(0xABCD).ok());
  EXPECT_FALSE(store.contains(0xABCD));
  EXPECT_EQ(store.remove(0xABCD).code(), ErrorCode::kNotFound);
}

TEST(DiskStoreTest, GetMissingIsNotFound) {
  TempDir dir;
  storage::DiskStore store(dir.path());
  EXPECT_EQ(store.get(1).status().code(), ErrorCode::kNotFound);
}

TEST(DiskStoreTest, OverwriteReplacesContent) {
  TempDir dir;
  storage::DiskStore store(dir.path());
  ASSERT_TRUE(store.put(7, to_bytes("old content")).ok());
  ASSERT_TRUE(store.put(7, to_bytes("new")).ok());
  EXPECT_EQ(to_string(store.get(7).value()), "new");
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(DiskStoreTest, SurvivesReopen) {
  TempDir dir;
  const Bytes data = payload_of(1234);
  {
    storage::DiskStore store(dir.path());
    ASSERT_TRUE(store.put(42, data).ok());
    ASSERT_TRUE(store.put(43, to_bytes("x")).ok());
  }
  storage::DiskStore reopened(dir.path());
  EXPECT_EQ(reopened.object_count(), 2u);
  EXPECT_TRUE(equal(reopened.get(42).value(), data));
  auto ids = reopened.list_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<VirtualId>{42, 43}));
}

TEST(DiskStoreTest, EmptyObjectRoundTrips) {
  TempDir dir;
  storage::DiskStore store(dir.path());
  ASSERT_TRUE(store.put(9, {}).ok());
  Result<Bytes> back = store.get(9);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(DiskStoreTest, LargeIdsMapToDistinctFiles) {
  TempDir dir;
  storage::DiskStore store(dir.path());
  const VirtualId a = 0xFFFFFFFFFFFFFFFEull;
  const VirtualId b = 0xFFFFFFFFFFFFFFFFull;
  ASSERT_TRUE(store.put(a, to_bytes("a")).ok());
  ASSERT_TRUE(store.put(b, to_bytes("b")).ok());
  EXPECT_EQ(to_string(store.get(a).value()), "a");
  EXPECT_EQ(to_string(store.get(b).value()), "b");
}

TEST(DiskStoreTest, BatchedPutPersistsEveryItemAcrossReopen) {
  TempDir dir;
  const Bytes a = payload_of(1500, 1);
  const Bytes b = payload_of(3000, 2);
  const Bytes c = payload_of(64, 3);
  {
    storage::DiskStore store(dir.path());
    const std::vector<Status> statuses =
        store.put_many({{21, a}, {22, b}, {23, c}});
    ASSERT_EQ(statuses.size(), 3u);
    for (const Status& st : statuses) EXPECT_TRUE(st.ok());
    const auto results = store.get_many({21, 22, 23, 24});
    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(equal(results[1].value(), b));
    EXPECT_EQ(results[3].status().code(), ErrorCode::kNotFound);
  }
  storage::DiskStore reopened(dir.path());
  EXPECT_EQ(reopened.object_count(), 3u);
  EXPECT_TRUE(equal(reopened.get(21).value(), a));
  EXPECT_TRUE(equal(reopened.get(23).value(), c));
}

TEST(ProviderMirrorTest, BatchedPutWritesThroughMirror) {
  TempDir dir;
  storage::DiskStore mirror(dir.path());
  storage::SimCloudProvider p(storage::ProviderDescriptor{
      "Mirrored", PrivacyLevel::kModerate, CostLevel::kCheap, 0.02});
  p.set_mirror(&mirror);
  const Bytes a = payload_of(900, 4);
  const Bytes b = payload_of(1800, 6);
  const std::vector<Status> statuses = p.put_many({{31, a}, {32, b}});
  ASSERT_EQ(statuses.size(), 2u);
  for (const Status& st : statuses) EXPECT_TRUE(st.ok());
  // The batch is durable the moment it returns: the mirror holds both
  // objects byte-for-byte.
  EXPECT_EQ(mirror.object_count(), 2u);
  EXPECT_TRUE(equal(mirror.get(31).value(), a));
  EXPECT_TRUE(equal(mirror.get(32).value(), b));
}

// --- metadata serialization ------------------------------------------------------

void populate_store(core::MetadataStore& meta) {
  meta.register_provider("Adobe", PrivacyLevel::kHigh, CostLevel::kPremium);
  meta.register_provider("Sea", PrivacyLevel::kLow, CostLevel::kCheap);
  meta.record_placement(0, 41367);
  meta.record_placement(1, 10986);
  (void)meta.register_client("Bob");
  (void)meta.add_password("Bob", "x9pr", PrivacyLevel::kLow);
  (void)meta.add_password("Bob", "Ty7e", PrivacyLevel::kHigh);
  core::ChunkEntry entry;
  entry.privacy_level = PrivacyLevel::kModerate;
  entry.layout = raid::StripeLayout::make(raid::RaidLevel::kRaid5, 3);
  entry.stripe = {{0, 41367}, {1, 10986}, {0, 222}, {1, 333}};
  entry.misleading = {12, 32, 57};
  entry.padded_size = 4096;
  entry.shard_digests.assign(4, crypto::sha256(to_bytes("shard")));
  entry.protection = ProtectionMode::kFragmentation;
  entry.protect_nonce = 0xF4A6E57A61EULL;
  entry.protect_bytes = 4096;
  entry.has_snapshot = true;
  entry.snapshot = {{1, 900}, {0, 901}, {1, 902}, {0, 903}};
  entry.snapshot_padded_size = 4000;
  entry.snapshot_misleading = {7};
  entry.snapshot_digests.assign(4, crypto::sha256(to_bytes("snap")));
  entry.snapshot_protection = ProtectionMode::kPartialAes;
  entry.snapshot_protect_nonce = 0x5A45;
  entry.snapshot_protect_bytes = 1000;
  (void)meta.add_chunk("Bob", "file1", 0, entry);
  core::ChunkEntry tomb;
  tomb.deleted = true;
  (void)meta.add_chunk("Bob", "file2", 0, tomb);
  (void)meta.unlink_chunk("Bob", "file2", 0);
}

TEST(MetadataIoTest, RoundTripPreservesEverything) {
  core::MetadataStore original;
  populate_store(original);
  const Bytes image = core::serialize_metadata(original);
  Result<std::shared_ptr<core::MetadataStore>> restored =
      core::deserialize_metadata(image);
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  const core::MetadataStore& copy = *restored.value();

  // Providers.
  const auto orig_providers = original.provider_table();
  const auto copy_providers = copy.provider_table();
  ASSERT_EQ(copy_providers.size(), orig_providers.size());
  for (std::size_t i = 0; i < orig_providers.size(); ++i) {
    EXPECT_EQ(copy_providers[i].name, orig_providers[i].name);
    EXPECT_EQ(copy_providers[i].privacy_level,
              orig_providers[i].privacy_level);
    EXPECT_EQ(copy_providers[i].virtual_ids, orig_providers[i].virtual_ids);
  }
  // Clients + auth survive.
  Result<PrivacyLevel> auth = copy.authenticate("Bob", "Ty7e");
  ASSERT_TRUE(auth.ok());
  EXPECT_EQ(auth.value(), PrivacyLevel::kHigh);
  EXPECT_FALSE(copy.authenticate("Bob", "wrong").ok());
  // Chunk linkage + full entry fields.
  const auto ref = copy.find_chunk("Bob", "file1", 0);
  ASSERT_TRUE(ref.has_value());
  Result<core::ChunkEntry> entry = copy.chunk_entry(ref->chunk_index);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value().stripe.size(), 4u);
  EXPECT_EQ(entry.value().stripe[1].virtual_id, 10986u);
  EXPECT_EQ(entry.value().misleading, (std::vector<std::uint32_t>{12, 32, 57}));
  EXPECT_EQ(entry.value().padded_size, 4096u);
  EXPECT_TRUE(entry.value().has_snapshot);
  EXPECT_EQ(entry.value().snapshot_padded_size, 4000u);
  EXPECT_EQ(entry.value().shard_digests[0],
            crypto::sha256(to_bytes("shard")));
  // Protection transform parameters (v2 wire fields) survive.
  EXPECT_EQ(entry.value().protection, ProtectionMode::kFragmentation);
  EXPECT_EQ(entry.value().protect_nonce, 0xF4A6E57A61EULL);
  EXPECT_EQ(entry.value().protect_bytes, 4096u);
  EXPECT_EQ(entry.value().snapshot_protection, ProtectionMode::kPartialAes);
  EXPECT_EQ(entry.value().snapshot_protect_nonce, 0x5A45u);
  EXPECT_EQ(entry.value().snapshot_protect_bytes, 1000u);
  // Tombstone preserved (indices stay stable).
  Result<core::ChunkEntry> tomb = copy.chunk_entry(1);
  ASSERT_TRUE(tomb.ok());
  EXPECT_TRUE(tomb.value().deleted);
}

TEST(MetadataIoTest, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(core::deserialize_metadata(to_bytes("nonsense")).ok());
  EXPECT_FALSE(core::deserialize_metadata({}).ok());
  core::MetadataStore store;
  populate_store(store);
  Bytes image = core::serialize_metadata(store);
  for (std::size_t cut : {std::size_t{4}, std::size_t{16}, image.size() / 2,
                          image.size() - 1}) {
    Bytes truncated(image.begin(),
                    image.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(core::deserialize_metadata(truncated).ok())
        << "cut=" << cut;
  }
}

TEST(MetadataIoTest, FuzzTruncationAtEveryByteOffset) {
  // A crash can cut a checkpoint image anywhere. Every proper prefix must
  // come back as a clean error -- never a crash, hang, or huge allocation
  // (ci runs this under ASan; the codec's plausibility guards cap every
  // length field by the bytes actually remaining).
  core::MetadataStore store;
  populate_store(store);
  const Bytes image = core::serialize_metadata(store);
  ASSERT_GT(image.size(), 64u);
  for (std::size_t len = 0; len < image.size(); ++len) {
    Result<std::shared_ptr<core::MetadataStore>> r =
        core::deserialize_metadata(BytesView(image.data(), len));
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix of "
                         << image.size();
  }
}

TEST(MetadataIoTest, FuzzSingleByteFlipNeverCrashes) {
  // Flip one byte at every offset of a valid image. Structural fields
  // (magic, counts, tags) must produce errors; flips inside opaque payload
  // bytes (names, digests, ids) may legitimately still parse -- the
  // contract is ok-or-error, never a crash, and whatever parses must be a
  // usable store.
  core::MetadataStore store;
  populate_store(store);
  const Bytes image = core::serialize_metadata(store);
  std::size_t parsed = 0;
  for (std::size_t off = 0; off < image.size(); ++off) {
    Bytes mutated = image;
    mutated[off] ^= 0x5A;
    Result<std::shared_ptr<core::MetadataStore>> r =
        core::deserialize_metadata(mutated);
    if (!r.ok()) continue;
    ++parsed;
    // Exercise the restored store: a silently-corrupt one must still be
    // internally consistent enough to walk.
    (void)r.value()->provider_table();
    (void)r.value()->client_table();
    for (std::size_t i = 0; i < r.value()->total_chunks(); ++i) {
      (void)r.value()->chunk_entry(i);
    }
  }
  // The magic alone guarantees some flips fail; some payload flips parse.
  EXPECT_LT(parsed, image.size());
}

// --- ProtectionMode wire-format compatibility (PR 8) ------------------------

/// A chunk row exactly as PR <8 serialized it: no 0xF2 marker byte, no
/// protection fields. Mirrors write_chunk_entry's v1 field order.
Bytes v1_chunk_row() {
  Bytes out;
  wire::Writer w(out);
  w.u8(2);  // privacy level (v1 rows lead with it; always <= 3)
  w.u8(static_cast<std::uint8_t>(raid::RaidLevel::kRaid5));
  w.u64(3);  // data shards
  w.u64(1);  // parity shards
  w.u32(2);  // stripe: 2 shard locations
  w.u64(0);
  w.u64(41367);
  w.u64(1);
  w.u64(10986);
  w.u32(0);  // snapshot shards: none
  w.u32(1);  // misleading positions
  w.u32(12);
  w.u64(4096);  // padded size
  const crypto::Digest digest = crypto::sha256(to_bytes("shard"));
  w.u32(1);  // one digest
  w.bytes(BytesView(digest.data(), digest.size()));
  w.u8(0);     // has_snapshot
  w.u64(0);    // snapshot padded size
  w.u32(0);    // snapshot misleading
  w.u32(0);    // snapshot digests
  w.u8(0);     // deleted
  return out;
}

TEST(MetadataIoTest, V1ChunkRowDecodesWithPartialAesNoOpDefaults) {
  // Pre-ProtectionMode blobs must keep reading: the v1 row (no marker, no
  // protection fields) decodes with mode = kPartialAes over 0 bytes -- the
  // exact no-op the data was written under.
  const Bytes row = v1_chunk_row();
  wire::Reader r(row);
  core::ChunkEntry entry;
  ASSERT_TRUE(core::read_chunk_entry(r, entry));
  EXPECT_EQ(entry.privacy_level, PrivacyLevel::kModerate);
  EXPECT_EQ(entry.stripe.size(), 2u);
  EXPECT_EQ(entry.padded_size, 4096u);
  EXPECT_EQ(entry.protection, ProtectionMode::kPartialAes);
  EXPECT_EQ(entry.protect_nonce, 0u);
  EXPECT_EQ(entry.protect_bytes, 0u);
  EXPECT_EQ(entry.snapshot_protection, ProtectionMode::kPartialAes);
  EXPECT_EQ(entry.snapshot_protect_bytes, 0u);
}

TEST(MetadataIoTest, V1ChunkRowFuzzEveryPrefixAndByteFlip) {
  // The PR 4 fuzz contract extended to the versioned row: every proper
  // prefix of a v1 row errors out cleanly, and no single-byte flip crashes
  // the reader (flips may parse -- payload bytes are opaque -- but a row
  // that parses must carry a legal protection mode).
  const Bytes row = v1_chunk_row();
  for (std::size_t len = 0; len < row.size(); ++len) {
    wire::Reader r(BytesView(row.data(), len));
    core::ChunkEntry entry;
    EXPECT_FALSE(core::read_chunk_entry(r, entry)) << "prefix len=" << len;
  }
  for (std::size_t off = 0; off < row.size(); ++off) {
    Bytes mutated = row;
    mutated[off] ^= 0x5A;
    wire::Reader r(mutated);
    core::ChunkEntry entry;
    if (core::read_chunk_entry(r, entry)) {
      EXPECT_LT(static_cast<int>(entry.protection), kNumProtectionModes);
    }
  }
}

TEST(MetadataIoTest, V2ChunkRowRejectsBadModeAndOversizedPrefix) {
  core::ChunkEntry entry;
  entry.privacy_level = PrivacyLevel::kLow;
  entry.layout = raid::StripeLayout::make(raid::RaidLevel::kRaid5, 3);
  entry.stripe = {{0, 1}, {1, 2}, {0, 3}, {1, 4}};
  entry.padded_size = 2048;
  entry.protection = ProtectionMode::kFragmentation;
  entry.protect_nonce = 99;
  entry.protect_bytes = 2048;
  Bytes row;
  wire::Writer w(row);
  core::write_chunk_entry(w, entry);

  // Trailing v2 fields: mode u8 | nonce u64 | bytes u64 | snap mode u8 |
  // snap nonce u64 | snap bytes u64 -- the mode byte sits 34 from the end.
  const std::size_t mode_off = row.size() - 34;
  ASSERT_EQ(row[mode_off],
            static_cast<std::uint8_t>(ProtectionMode::kFragmentation));
  for (std::uint8_t bad : {std::uint8_t{3}, std::uint8_t{7},
                           std::uint8_t{0xFF}}) {
    Bytes mutated = row;
    mutated[mode_off] = bad;
    wire::Reader r(mutated);
    core::ChunkEntry decoded;
    EXPECT_FALSE(core::read_chunk_entry(r, decoded)) << int(bad);
  }
  // protect_bytes > padded_size is a flipped bit, not a legal row: the
  // prefix would walk the unprotect path off the payload.
  Bytes oversized = row;
  oversized[row.size() - 25] = 0xFF;  // low bytes of protect_bytes
  oversized[row.size() - 24] = 0xFF;
  wire::Reader r(oversized);
  core::ChunkEntry decoded;
  EXPECT_FALSE(core::read_chunk_entry(r, decoded));
  // And the untouched row round-trips its protection parameters.
  wire::Reader ok(row);
  ASSERT_TRUE(core::read_chunk_entry(ok, decoded));
  EXPECT_EQ(decoded.protection, ProtectionMode::kFragmentation);
  EXPECT_EQ(decoded.protect_nonce, 99u);
  EXPECT_EQ(decoded.protect_bytes, 2048u);
}

TEST(MetadataIoTest, EmptyStoreRoundTrips) {
  core::MetadataStore empty;
  Result<std::shared_ptr<core::MetadataStore>> restored =
      core::deserialize_metadata(core::serialize_metadata(empty));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value()->total_chunks(), 0u);
  EXPECT_TRUE(restored.value()->provider_table().empty());
}

// --- distributor restart -----------------------------------------------------------

TEST(DistributorRestartTest, NewDistributorServesOldFilesFromImage) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  core::DistributorConfig config;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.1;

  const Bytes data = payload_of(20000, 77);
  Bytes image;
  {
    core::CloudDataDistributor cdd(registry, config);
    ASSERT_TRUE(cdd.register_client("Bob").ok());
    ASSERT_TRUE(cdd.add_password("Bob", "pw", PrivacyLevel::kHigh).ok());
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;
    ASSERT_TRUE(cdd.put_file("Bob", "pw", "persisted", data, opts).ok());
    image = core::serialize_metadata(cdd.metadata());
    // The first distributor instance is destroyed here -- a "crash".
  }

  Result<std::shared_ptr<core::MetadataStore>> restored =
      core::deserialize_metadata(image);
  ASSERT_TRUE(restored.ok());
  core::DistributorConfig config2 = config;
  config2.seed = 0xD1FFE12E47;  // different instance identity
  core::CloudDataDistributor revived(registry, config2, restored.value());

  Result<Bytes> back = revived.get_file("Bob", "pw", "persisted");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));

  // The revived distributor can keep writing without id collisions.
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kLow;
  ASSERT_TRUE(
      revived.put_file("Bob", "pw", "fresh", payload_of(5000, 78), opts).ok());
  EXPECT_TRUE(revived.get_file("Bob", "pw", "fresh").ok());
  // And remove the pre-crash file cleanly.
  ASSERT_TRUE(revived.remove_file("Bob", "pw", "persisted").ok());
}

}  // namespace
}  // namespace cshield

// Tests for the mining toolbox: dataset ops, linear algebra, regression,
// hierarchical clustering + dendrograms, k-means, Apriori, naive Bayes, and
// the partition/tree comparison metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/stats.hpp"

#include "mining/apriori.hpp"
#include "mining/dataset.hpp"
#include "mining/hierarchical.hpp"
#include "mining/kmeans.hpp"
#include "mining/linalg.hpp"
#include "mining/metrics.hpp"
#include "mining/decision_tree.hpp"
#include "mining/knn.hpp"
#include "mining/naive_bayes.hpp"
#include "mining/regression.hpp"
#include "util/random.hpp"

namespace cshield::mining {
namespace {

// --- Dataset ------------------------------------------------------------------

Dataset small_xy() {
  Dataset d({"x", "y"});
  d.add_row({1, 10});
  d.add_row({2, 20});
  d.add_row({3, 30});
  d.add_row({4, 40});
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset d = small_xy();
  EXPECT_EQ(d.num_rows(), 4u);
  EXPECT_EQ(d.num_cols(), 2u);
  EXPECT_EQ(d.column_index("y"), 1u);
  EXPECT_DOUBLE_EQ(d.at(2, 1), 30.0);
  EXPECT_THROW((void)d.column_index("nope"), std::invalid_argument);
}

TEST(DatasetTest, RowArityEnforced) {
  Dataset d({"a", "b"});
  EXPECT_THROW(d.add_row({1.0}), std::invalid_argument);
}

TEST(DatasetTest, SliceAndSelect) {
  const Dataset d = small_xy();
  const Dataset s = d.slice_rows(1, 3);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 2.0);
  const Dataset p = d.select_rows({3, 0});
  EXPECT_DOUBLE_EQ(p.at(0, 1), 40.0);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 10.0);
  const Dataset c = d.select_columns({"y"});
  EXPECT_EQ(c.num_cols(), 1u);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 20.0);
}

TEST(DatasetTest, SplitContiguousPartitionsEvenly) {
  Dataset d({"v"});
  for (int i = 0; i < 10; ++i) d.add_row({static_cast<double>(i)});
  const auto parts = d.split_contiguous(3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].num_rows(), 4u);  // remainder goes to the front
  EXPECT_EQ(parts[1].num_rows(), 3u);
  EXPECT_EQ(parts[2].num_rows(), 3u);
  // Concatenation restores the original.
  Dataset joined(d.column_names());
  for (const auto& p : parts) joined.append(p);
  for (std::size_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(joined.at(r, 0), d.at(r, 0));
  }
}

TEST(DatasetTest, StandardizeZeroMeanUnitVariance) {
  Rng rng(1);
  Dataset d({"a", "b"});
  for (int i = 0; i < 200; ++i) {
    d.add_row({rng.normal(50.0, 5.0), rng.normal(-3.0, 0.1)});
  }
  const Dataset z = standardize(d);
  for (std::size_t c = 0; c < 2; ++c) {
    RunningStats s;
    for (std::size_t r = 0; r < z.num_rows(); ++r) s.add(z.at(r, c));
    EXPECT_NEAR(s.mean(), 0.0, 1e-9);
    EXPECT_NEAR(s.stddev(), 1.0, 1e-9);
  }
}

TEST(DatasetTest, StandardizeConstantColumnIsZero) {
  Dataset d({"c"});
  d.add_row({7});
  d.add_row({7});
  const Dataset z = standardize(d);
  EXPECT_DOUBLE_EQ(z.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z.at(1, 0), 0.0);
}

// --- linalg ----------------------------------------------------------------------

TEST(LinalgTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;  a.at(0, 1) = 1;
  a.at(1, 0) = 1;  a.at(1, 1) = 3;
  Result<std::vector<double>> x = solve(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(LinalgTest, SingularSystemFails) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;  a.at(0, 1) = 2;
  a.at(1, 0) = 2;  a.at(1, 1) = 4;
  EXPECT_EQ(solve(a, {1, 2}).status().code(), ErrorCode::kInvalidArgument);
}

TEST(LinalgTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0;  a.at(0, 1) = 1;
  a.at(1, 0) = 1;  a.at(1, 1) = 0;
  Result<std::vector<double>> x = solve(a, {3, 4});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 4.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(LinalgTest, GramIsSymmetric) {
  Matrix m(3, 2);
  m.at(0, 0) = 1; m.at(0, 1) = 2;
  m.at(1, 0) = 3; m.at(1, 1) = 4;
  m.at(2, 0) = 5; m.at(2, 1) = 6;
  const Matrix g = m.gram();
  EXPECT_DOUBLE_EQ(g.at(0, 1), g.at(1, 0));
  EXPECT_DOUBLE_EQ(g.at(0, 0), 35.0);  // 1+9+25
}

// --- regression -------------------------------------------------------------------

TEST(RegressionTest, RecoversPlantedCoefficientsExactly) {
  Rng rng(2);
  Dataset d({"x1", "x2", "y"});
  for (int i = 0; i < 50; ++i) {
    const double x1 = rng.uniform(0, 10);
    const double x2 = rng.uniform(-5, 5);
    d.add_row({x1, x2, 3.0 * x1 - 2.0 * x2 + 7.0});
  }
  Result<LinearModel> m = fit_linear(d, {"x1", "x2"}, "y");
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m.value().coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(m.value().coefficients[1], -2.0, 1e-9);
  EXPECT_NEAR(m.value().intercept, 7.0, 1e-9);
  EXPECT_NEAR(m.value().r_squared, 1.0, 1e-12);
  EXPECT_NEAR(m.value().rmse, 0.0, 1e-9);
}

TEST(RegressionTest, NoisyFitIsApproximate) {
  Rng rng(3);
  Dataset d({"x", "y"});
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 100);
    d.add_row({x, 1.5 * x + 10.0 + rng.normal(0, 2.0)});
  }
  Result<LinearModel> m = fit_linear(d, {"x"}, "y");
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m.value().coefficients[0], 1.5, 0.01);
  EXPECT_NEAR(m.value().intercept, 10.0, 0.6);
  EXPECT_GT(m.value().r_squared, 0.99);
}

TEST(RegressionTest, TooFewObservationsFail) {
  Dataset d({"x1", "x2", "y"});
  d.add_row({1, 2, 3});
  d.add_row({4, 5, 6});
  EXPECT_EQ(fit_linear(d, {"x1", "x2"}, "y").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(RegressionTest, CollinearFeaturesFail) {
  Dataset d({"x1", "x2", "y"});
  for (int i = 0; i < 20; ++i) {
    const double x = i;
    d.add_row({x, 2 * x, 3 * x});  // x2 = 2*x1 exactly
  }
  EXPECT_FALSE(fit_linear(d, {"x1", "x2"}, "y").ok());
}

TEST(RegressionTest, PredictAndEquation) {
  LinearModel m;
  m.coefficients = {2.0, -1.0};
  m.intercept = 5.0;
  EXPECT_DOUBLE_EQ(m.predict({3.0, 4.0}), 7.0);
  const std::string eq = m.equation({"a", "b"});
  EXPECT_NE(eq.find("2.00*a"), std::string::npos);
  EXPECT_NE(eq.find("-1.00*b"), std::string::npos);
}

TEST(RegressionTest, CoefficientErrorIsRelative) {
  LinearModel ref;
  ref.coefficients = {3.0, 4.0};
  ref.intercept = 0.0;
  LinearModel same = ref;
  EXPECT_DOUBLE_EQ(coefficient_error(ref, same), 0.0);
  LinearModel off = ref;
  off.coefficients = {3.0, 9.0};  // off by 5 on a norm-5 reference
  EXPECT_NEAR(coefficient_error(ref, off), 1.0, 1e-12);
}

// --- hierarchical clustering -------------------------------------------------------

/// Two tight groups far apart: {0,1,2} near origin, {3,4,5} near (10,10).
Dataset two_blobs() {
  Dataset d({"x", "y"});
  d.add_row({0.0, 0.0});
  d.add_row({0.1, 0.0});
  d.add_row({0.0, 0.1});
  d.add_row({10.0, 10.0});
  d.add_row({10.1, 10.0});
  d.add_row({10.0, 10.1});
  return d;
}

TEST(HierarchicalTest, MergesProduceFullTree) {
  const Dendrogram tree = cluster_rows(two_blobs(), Linkage::kAverage);
  EXPECT_EQ(tree.num_leaves(), 6u);
  EXPECT_EQ(tree.merges().size(), 5u);
  // Heights are non-decreasing for average linkage on metric data.
  for (std::size_t i = 1; i < tree.merges().size(); ++i) {
    EXPECT_GE(tree.merges()[i].distance + 1e-12,
              tree.merges()[i - 1].distance);
  }
  EXPECT_EQ(tree.merges().back().size, 6u);
}

TEST(HierarchicalTest, CutTwoRecoversBlobs) {
  const Dendrogram tree = cluster_rows(two_blobs(), Linkage::kAverage);
  const std::vector<int> labels = tree.cut(2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(HierarchicalTest, CutExtremes) {
  const Dendrogram tree = cluster_rows(two_blobs(), Linkage::kSingle);
  const auto one = tree.cut(1);
  for (int l : one) EXPECT_EQ(l, 0);
  const auto all = tree.cut(6);
  std::set<int> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 6u);
  EXPECT_THROW((void)tree.cut(0), std::invalid_argument);
  EXPECT_THROW((void)tree.cut(7), std::invalid_argument);
}

TEST(HierarchicalTest, CopheneticSeparatesBlobs) {
  const Dendrogram tree = cluster_rows(two_blobs(), Linkage::kAverage);
  const DistanceMatrix coph = tree.cophenetic();
  // Within-blob cophenetic distances are far below cross-blob ones.
  EXPECT_LT(coph.at(0, 1), 1.0);
  EXPECT_GT(coph.at(0, 3), 10.0);
}

TEST(HierarchicalTest, LeafOrderIsAPermutation) {
  const Dendrogram tree = cluster_rows(two_blobs(), Linkage::kComplete);
  const auto order = tree.leaf_order();
  std::set<std::size_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 6u);
  // Blob members are contiguous in the dendrogram layout.
  std::vector<std::size_t> pos(6);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  const auto [min03, max03] = std::minmax({pos[0], pos[1], pos[2]});
  EXPECT_EQ(max03 - min03, 2u);
}

TEST(HierarchicalTest, LinkagesAgreeOnWellSeparatedData) {
  for (auto linkage : {Linkage::kSingle, Linkage::kComplete,
                       Linkage::kAverage}) {
    const auto labels = cluster_rows(two_blobs(), linkage).cut(2);
    EXPECT_EQ(adjusted_rand_index(labels, {0, 0, 0, 1, 1, 1}), 1.0)
        << linkage_name(linkage);
  }
}

TEST(HierarchicalTest, SingleLeafTree) {
  Dataset d({"x"});
  d.add_row({1.0});
  const Dendrogram tree = cluster_rows(d, Linkage::kAverage);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.merges().empty());
  EXPECT_EQ(tree.cut(1), std::vector<int>{0});
}

TEST(HierarchicalTest, ToTextListsLeavesAndMerges) {
  const Dendrogram tree = cluster_rows(two_blobs(), Linkage::kAverage);
  const std::string text = tree.to_text();
  EXPECT_NE(text.find("leaf order:"), std::string::npos);
  EXPECT_NE(text.find("merges"), std::string::npos);
}

// --- kmeans -------------------------------------------------------------------------

TEST(KMeansTest, SeparatesBlobs) {
  Result<KMeansResult> r = kmeans(two_blobs(), 2);
  ASSERT_TRUE(r.ok());
  const auto& labels = r.value().labels;
  EXPECT_EQ(adjusted_rand_index(labels, {0, 0, 0, 1, 1, 1}), 1.0);
  EXPECT_TRUE(r.value().converged);
  EXPECT_LT(r.value().inertia, 0.1);
}

TEST(KMeansTest, KLargerThanRowsFails) {
  EXPECT_FALSE(kmeans(two_blobs(), 7).ok());
  EXPECT_FALSE(kmeans(two_blobs(), 0).ok());
}

TEST(KMeansTest, KEqualsRowsGivesZeroInertia) {
  Result<KMeansResult> r = kmeans(two_blobs(), 6);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().inertia, 0.0, 1e-9);
}

TEST(KMeansTest, DeterministicForSeed) {
  const auto a = kmeans(two_blobs(), 2, 100, 42);
  const auto b = kmeans(two_blobs(), 2, 100, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().labels, b.value().labels);
}

// --- apriori -----------------------------------------------------------------------

std::vector<Transaction> basket_db() {
  // {1,2} co-occur in 4/6; item 3 rides along with 1 in 3/6.
  return {{1, 2}, {1, 2, 3}, {1, 2, 3}, {1, 3}, {1, 2}, {2, 4}};
}

TEST(AprioriTest, FindsFrequentItemsets) {
  AprioriOptions opts;
  opts.min_support = 0.5;
  opts.min_confidence = 0.7;
  Result<AprioriResult> r = apriori(basket_db(), opts);
  ASSERT_TRUE(r.ok());
  bool found_12 = false;
  for (const auto& fs : r.value().itemsets) {
    if (fs.items == std::vector<std::uint32_t>{1, 2}) {
      found_12 = true;
      EXPECT_EQ(fs.support_count, 4u);
      EXPECT_NEAR(fs.support, 4.0 / 6.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_12);
}

bool rhs_is(const AssociationRule& rule, std::uint32_t item) {
  return rule.rhs.size() == 1 && rule.rhs[0] == item;
}

TEST(AprioriTest, RuleConfidenceAndLift) {
  AprioriOptions opts;
  opts.min_support = 0.5;
  opts.min_confidence = 0.75;
  Result<AprioriResult> r = apriori(basket_db(), opts);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const auto& rule : r.value().rules) {
    if (rule.lhs == std::vector<std::uint32_t>{2} &&
        rhs_is(rule, 1)) {
      found = true;
      EXPECT_NEAR(rule.confidence, 4.0 / 5.0, 1e-12);  // P(1|2)
      EXPECT_NEAR(rule.lift, (4.0 / 5.0) / (5.0 / 6.0), 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, EmptyDatabaseFails) {
  EXPECT_FALSE(apriori({}, AprioriOptions{}).ok());
}

TEST(AprioriTest, HighSupportPrunesEverything) {
  AprioriOptions opts;
  opts.min_support = 0.99;
  Result<AprioriResult> r = apriori(basket_db(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rules.empty());
}

TEST(AprioriTest, CompareRulesScoresOverlap) {
  AssociationRule a;
  a.lhs = {1};
  a.rhs = {2};
  AssociationRule b;
  b.lhs = {3};
  b.rhs = {4};
  const auto cmp = compare_rules({a, b}, {a});
  EXPECT_DOUBLE_EQ(cmp.recall, 0.5);
  EXPECT_DOUBLE_EQ(cmp.precision, 1.0);
  EXPECT_EQ(cmp.matched, 1u);
}

TEST(AprioriTest, RuleKeyIsCanonical) {
  AssociationRule r;
  r.lhs = {1, 5};
  r.rhs = {9};
  EXPECT_EQ(r.key(), "1,5=>9");
}

// --- naive bayes ---------------------------------------------------------------------

TEST(NaiveBayesTest, SeparatesGaussianClasses) {
  Rng rng(7);
  Dataset train({"f1", "f2", "label"});
  Dataset test({"f1", "f2", "label"});
  for (int i = 0; i < 400; ++i) {
    Dataset& dst = (i % 4 == 0) ? test : train;
    if (i % 2 == 0) {
      dst.add_row({rng.normal(0, 1), rng.normal(0, 1), 0});
    } else {
      dst.add_row({rng.normal(6, 1), rng.normal(6, 1), 1});
    }
  }
  Result<NaiveBayes> model = NaiveBayes::fit(train, "label");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_classes(), 2u);
  EXPECT_GT(model.value().accuracy(test, "label"), 0.95);
}

TEST(NaiveBayesTest, SingleClassFails) {
  Dataset d({"f", "label"});
  d.add_row({1, 0});
  d.add_row({2, 0});
  EXPECT_FALSE(NaiveBayes::fit(d, "label").ok());
}

TEST(NaiveBayesTest, TinyClassFails) {
  Dataset d({"f", "label"});
  d.add_row({1, 0});
  d.add_row({2, 0});
  d.add_row({9, 1});  // class 1 has a single observation
  EXPECT_FALSE(NaiveBayes::fit(d, "label").ok());
}

// --- metrics ----------------------------------------------------------------------

TEST(MetricsTest, AriIdentityAndChance) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
  // Relabeled partition is still identical.
  const std::vector<int> relabeled{5, 5, 9, 9, 7, 7};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, relabeled), 1.0);
}

TEST(MetricsTest, AriDisagreementIsLow) {
  const std::vector<int> a{0, 0, 0, 1, 1, 1};
  const std::vector<int> b{0, 1, 0, 1, 0, 1};
  EXPECT_LT(adjusted_rand_index(a, b), 0.1);
}

TEST(MetricsTest, RandIndexBounds) {
  const std::vector<int> a{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
  const std::vector<int> b{0, 1, 0, 1};
  EXPECT_LT(rand_index(a, b), 0.5);
}

TEST(MetricsTest, ChurnZeroForRelabeledPartition) {
  const std::vector<int> a{0, 0, 1, 1, 2};
  const std::vector<int> b{7, 7, 3, 3, 1};
  EXPECT_DOUBLE_EQ(membership_churn(a, b), 0.0);
}

TEST(MetricsTest, ChurnCountsMovers) {
  const std::vector<int> a{0, 0, 0, 1, 1, 1};
  const std::vector<int> b{0, 0, 1, 1, 1, 1};  // item 2 moved
  EXPECT_NEAR(membership_churn(a, b), 1.0 / 6.0, 1e-12);
}

TEST(MetricsTest, SpearmanMonotoneInvariance) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 4, 9, 16, 25};  // monotone transform
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  const std::vector<double> z{25, 16, 9, 4, 1};
  EXPECT_NEAR(spearman(x, z), -1.0, 1e-12);
}

TEST(MetricsTest, CopheneticCorrelationSelfIsOne) {
  const Dendrogram tree = cluster_rows(two_blobs(), Linkage::kAverage);
  EXPECT_NEAR(cophenetic_correlation(tree, tree), 1.0, 1e-12);
  EXPECT_NEAR(bakers_gamma(tree, tree), 1.0, 1e-12);
}

// --- decision tree ----------------------------------------------------------------

Dataset quadrant_data(Rng& rng, int n) {
  // Class = quadrant sign pattern: needs two splits, separable by a tree.
  Dataset d({"x", "y", "label"});
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-4, 4);
    const double y = rng.uniform(-4, 4);
    const double label = (x > 0 ? 1.0 : 0.0) + (y > 0 ? 2.0 : 0.0);
    d.add_row({x, y, label});
  }
  return d;
}

TEST(DecisionTreeTest, LearnsAxisAlignedClasses) {
  Rng rng(31);
  const Dataset train = quadrant_data(rng, 600);
  const Dataset test = quadrant_data(rng, 200);
  Result<DecisionTree> tree = DecisionTree::fit(train, "label");
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree.value().accuracy(test, "label"), 0.92);
  EXPECT_GT(tree.value().node_count(), 3u);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(32);
  const Dataset train = quadrant_data(rng, 400);
  DecisionTreeOptions opts;
  opts.max_depth = 1;
  Result<DecisionTree> stump = DecisionTree::fit(train, "label", opts);
  ASSERT_TRUE(stump.ok());
  EXPECT_LE(stump.value().depth(), 1u);
  // A depth-1 stump cannot separate 4 quadrant classes.
  EXPECT_LT(stump.value().accuracy(train, "label"), 0.7);
}

TEST(DecisionTreeTest, SingleClassFails) {
  Dataset d({"x", "label"});
  d.add_row({1, 0});
  d.add_row({2, 0});
  EXPECT_FALSE(DecisionTree::fit(d, "label").ok());
  EXPECT_FALSE(DecisionTree::fit(Dataset({"x", "label"}), "label").ok());
}

TEST(DecisionTreeTest, PureTrainingAccuracyOnSeparableData) {
  Rng rng(33);
  const Dataset train = quadrant_data(rng, 300);
  DecisionTreeOptions opts;
  opts.max_depth = 16;
  opts.min_samples_split = 2;
  opts.min_samples_leaf = 1;
  Result<DecisionTree> tree = DecisionTree::fit(train, "label", opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree.value().accuracy(train, "label"), 0.995);
}

// --- knn ----------------------------------------------------------------------------

TEST(KnnTest, ClassifiesBlobData) {
  Rng rng(34);
  Dataset train({"x", "y", "label"});
  Dataset test({"x", "y", "label"});
  for (int i = 0; i < 400; ++i) {
    Dataset& dst = (i % 4 == 0) ? test : train;
    if (i % 2 == 0) {
      dst.add_row({rng.normal(0, 1), rng.normal(0, 1), 0});
    } else {
      dst.add_row({rng.normal(5, 1), rng.normal(5, 1), 1});
    }
  }
  Result<KnnClassifier> model = KnnClassifier::fit(train, "label", 5);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().accuracy(test, "label"), 0.95);
}

TEST(KnnTest, StandardizationMakesScalesIrrelevant) {
  // Same structure, but one feature is scaled by 1e6; without z-scoring it
  // would dominate the metric.
  Rng rng(35);
  Dataset train({"small", "huge", "label"});
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    train.add_row({rng.normal(label * 3.0, 0.5),
                   rng.normal(1e6, 1e5),  // pure noise at huge scale
                   static_cast<double>(label)});
  }
  Result<KnnClassifier> model = KnnClassifier::fit(train, "label", 7);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().accuracy(train, "label"), 0.9);
}

TEST(KnnTest, KOneMemorizesTrainingSet) {
  Rng rng(36);
  const Dataset train = quadrant_data(rng, 100);
  Result<KnnClassifier> model = KnnClassifier::fit(train, "label", 1);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model.value().accuracy(train, "label"), 1.0);
}

TEST(KnnTest, InvalidArgumentsFail) {
  Dataset d({"x", "label"});
  d.add_row({1, 0});
  EXPECT_FALSE(KnnClassifier::fit(d, "label", 0).ok());
  EXPECT_FALSE(KnnClassifier::fit(Dataset({"x", "label"}), "label", 3).ok());
}

TEST(KnnTest, KClampedToTrainingSize) {
  Dataset d({"x", "label"});
  d.add_row({0, 0});
  d.add_row({1, 1});
  Result<KnnClassifier> model = KnnClassifier::fit(d, "label", 50);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().k(), 2u);
}

TEST(MetricsTest, CopheneticDetectsScrambledTree) {
  // Same points, but one tree built on scrambled labels: comparing a blob
  // structure against itself with permuted leaves drops correlation.
  const Dataset d = two_blobs();
  const Dendrogram a = cluster_rows(d, Linkage::kAverage);
  const Dataset scrambled = d.select_rows({0, 3, 1, 4, 2, 5});
  const Dendrogram b = cluster_rows(scrambled, Linkage::kAverage);
  EXPECT_LT(cophenetic_correlation(a, b), 0.5);
}

}  // namespace
}  // namespace cshield::mining

// Tests for the telemetry subsystem (src/obs): metric semantics and bucket
// boundaries, registry export formats, tracer ring behavior and span
// parenting, and the distributor integration -- per-provider histograms,
// root-span coverage of an op's sim time, parity-fallback and rollback
// accounting, and OpReport/span consistency.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/distributor.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "storage/provider_registry.hpp"

namespace cshield::obs {
namespace {

// --- counters & gauges -------------------------------------------------------

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddGoesNegative) {
  Gauge g;
  g.set(5);
  g.add(-8);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// --- histograms --------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h(std::vector<double>{10.0, 100.0});
  h.observe(5.0);     // <= 10        -> bucket 0
  h.observe(10.0);    // == bound     -> bucket 0 (le semantics)
  h.observe(10.5);    // (10, 100]    -> bucket 1
  h.observe(100.0);   // == bound     -> bucket 1
  h.observe(101.0);   // > last bound -> overflow bucket
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 226.5);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.mean(), 226.5 / 5.0);
}

TEST(HistogramTest, PercentilesMonotoneAndClamped) {
  Histogram h(Histogram::exponential_bounds());
  for (int i = 1; i <= 1000; ++i) h.observe(1e4 * i);  // 10 us .. 10 ms
  const Histogram::Snapshot s = h.snapshot();
  const double p50 = s.percentile(0.50);
  const double p95 = s.percentile(0.95);
  const double p99 = s.percentile(0.99);
  EXPECT_LE(s.min, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max);
  // Geometric x2 buckets bound the interpolation error by the bucket width.
  EXPECT_NEAR(p50, 5e6, 5e6);
  EXPECT_GT(p99, p50);
}

TEST(HistogramTest, EmptySnapshotIsZeroed) {
  Histogram h(std::vector<double>{1.0});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 0.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h(std::vector<double>{10.0});
  h.observe(3.0);
  h.observe(30.0);
  h.reset();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.counts[0] + s.counts[1], 0u);
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStable) {
  MetricsRegistry m;
  Counter& a = m.counter("x.hits");
  Counter& b = m.counter("x.hits");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = m.histogram("x.lat_ns");
  Histogram& h2 = m.histogram("x.lat_ns");
  EXPECT_EQ(&h1, &h2);
  EXPECT_NE(static_cast<void*>(&m.gauge("x.depth")),
            static_cast<void*>(nullptr));
}

TEST(MetricsRegistryTest, SnapshotSeesAllMetrics) {
  MetricsRegistry m;
  m.counter("a.total").inc(7);
  m.gauge("a.depth").set(-2);
  m.histogram("a.ns").observe(5e3);
  const MetricsRegistry::Snapshot s = m.snapshot();
  EXPECT_EQ(s.counters.at("a.total"), 7u);
  EXPECT_EQ(s.gauges.at("a.depth"), -2);
  EXPECT_EQ(s.histograms.at("a.ns").count, 1u);
}

TEST(MetricsRegistryTest, PrometheusSanitizesDots) {
  MetricsRegistry m;
  m.counter("provider.AWS.requests").inc(3);
  m.histogram("provider.AWS.put_ns").observe(2e3);
  const std::string text = m.to_prometheus();
  EXPECT_NE(text.find("# TYPE provider_AWS_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("provider_AWS_requests 3"), std::string::npos);
  EXPECT_NE(text.find("provider_AWS_put_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("provider_AWS_put_ns_count 1"), std::string::npos);
  EXPECT_EQ(text.find("provider.AWS"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportRoundTripsKnownFields) {
  MetricsRegistry m;
  m.counter("c.total").inc(11);
  m.gauge("g.now").set(4);
  Histogram& h = m.histogram("h.ns");
  h.observe(1.5e3);
  h.observe(3e3);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"counters\":{\"c.total\":11}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g.now\":4}"), std::string::npos);
  EXPECT_NE(json.find("\"h.ns\":{\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[["), std::string::npos);
  // Overflow bucket serializes with a null upper bound.
  EXPECT_NE(json.find("[null,"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetKeepsAddressesZerosValues) {
  MetricsRegistry m;
  Counter& c = m.counter("z.total");
  c.inc(9);
  m.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&m.counter("z.total"), &c);
}

// --- tracer ------------------------------------------------------------------

TEST(TracerTest, RingWrapsKeepingNewestOldestFirst) {
  Tracer tr(4);
  for (int i = 1; i <= 6; ++i) {
    SpanRecord r;
    r.span_id = static_cast<std::uint64_t>(i);
    r.name = "s" + std::to_string(i);
    tr.record(std::move(r));
  }
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.recorded(), 6u);
  const std::vector<SpanRecord> spans = tr.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].span_id, i + 3) << "oldest-first order";
  }
}

TEST(TracerTest, IdsAreUniqueAndNonZero) {
  Tracer tr;
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = tr.next_id();
    EXPECT_NE(id, 0u);
    EXPECT_GT(id, last);
    last = id;
  }
}

TEST(TracerTest, JsonEscapesAndOmitsEmptyFields) {
  SpanRecord r;
  r.op_id = 1;
  r.span_id = 2;
  r.name = "we\"ird\n";
  const std::string json = Tracer::to_json(r);
  EXPECT_NE(json.find("\"name\":\"we\\\"ird\\n\""), std::string::npos);
  EXPECT_EQ(json.find("\"client\""), std::string::npos);
  EXPECT_EQ(json.find("\"chunk\""), std::string::npos);
  EXPECT_EQ(json.find("\"provider\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"OK\""), std::string::npos);
}

TEST(TracerTest, CountsUnexportedOverwritesAsDrops) {
  Tracer tr(4);
  auto record_named = [&tr](const char* name) {
    SpanRecord r;
    r.span_id = tr.next_id();
    r.name = name;
    tr.record(std::move(r));
  };
  for (int i = 0; i < 4; ++i) record_named("fill");
  EXPECT_EQ(tr.dropped_spans(), 0u);  // ring full but nothing overwritten
  record_named("wrap1");
  record_named("wrap2");
  EXPECT_EQ(tr.dropped_spans(), 2u);  // two unexported spans lost

  // Exported spans are fair game: overwriting them is not a drop.
  tr.mark_exported();
  for (int i = 0; i < 4; ++i) record_named("post-export");
  EXPECT_EQ(tr.dropped_spans(), 2u);

  tr.clear();
  EXPECT_EQ(tr.dropped_spans(), 0u);
  record_named("fresh");
  EXPECT_EQ(tr.dropped_spans(), 0u);
}

TEST(TracerTest, DropHookMirrorsIntoRegistryCounter) {
  Telemetry tel(true, /*span_capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    SpanRecord r;
    r.span_id = tel.tracer().next_id();
    r.name = "s";
    tel.tracer().record(std::move(r));
  }
  EXPECT_EQ(tel.tracer().dropped_spans(), 3u);
  EXPECT_EQ(tel.metrics().counter("trace.dropped_spans").value(), 3u);
  // The counter is lazy: a quiet instance never interns it.
  Telemetry quiet(true, 2);
  EXPECT_TRUE(quiet.metrics().snapshot().counters.empty());
}

TEST(TracerTest, JsonEscapesControlAndHighBitBytes) {
  SpanRecord r;
  r.op_id = 1;
  r.span_id = 2;
  r.name = std::string("a\x01" "b\x7f" "\xc3\xa9");  // control, DEL, UTF-8 e-acute
  const std::string json = Tracer::to_json(r);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  // High-bit bytes pass through verbatim (they are not C0 controls) -- the
  // signed-char regression printed ￿ff.. garbage for them.
  EXPECT_EQ(json.find("\\uffffff"), std::string::npos);
  EXPECT_NE(json.find("\xc3\xa9"), std::string::npos);
}

TEST(ScopedSpanTest, ParentingLinksChildToRoot) {
  Telemetry tel(true);
  {
    SpanRecord root_proto;
    root_proto.op_id = tel.tracer().next_id();
    root_proto.name = "op";
    ScopedSpan root(&tel, std::move(root_proto));
    ASSERT_TRUE(root.armed());
    SpanRecord child_proto;
    child_proto.op_id = root.ctx().op_id;
    child_proto.parent_id = root.ctx().parent;
    child_proto.name = "stage";
    ScopedSpan child(&tel, std::move(child_proto));
    ASSERT_TRUE(child.armed());
    EXPECT_NE(child.id(), root.id());
  }  // child records before root (reverse destruction order)
  const std::vector<SpanRecord> spans = tel.tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "stage");
  EXPECT_EQ(spans[1].name, "op");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_EQ(spans[0].op_id, spans[1].op_id);
  EXPECT_EQ(spans[1].parent_id, 0u) << "root has no parent";
}

TEST(ScopedSpanTest, InertWhenDisabledOrNull) {
  Telemetry tel(false);
  {
    SpanRecord r;
    r.name = "never";
    ScopedSpan s(&tel, std::move(r));
    EXPECT_FALSE(s.armed());
    SpanRecord r2;
    ScopedSpan s2(nullptr, std::move(r2));
    EXPECT_FALSE(s2.armed());
  }
  EXPECT_EQ(tel.tracer().recorded(), 0u);
#ifndef CSHIELD_NO_TELEMETRY
  tel.set_enabled(true);
  EXPECT_TRUE(tel.enabled());
#endif
}

// --- distributor integration -------------------------------------------------

using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

Bytes payload_of(std::size_t n, std::uint64_t seed = 7) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

struct ObsFixture {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  std::shared_ptr<Telemetry> sink = std::make_shared<Telemetry>();
  DistributorConfig config;
  std::unique_ptr<CloudDataDistributor> cdd;

  ObsFixture() {
    config.default_raid = raid::RaidLevel::kRaid5;
    config.stripe_data_shards = 3;
    config.worker_threads = 4;
    config.telemetry_sink = sink;  // isolated from the process-global sink
    cdd = std::make_unique<CloudDataDistributor>(registry, config);
    EXPECT_TRUE(cdd->register_client("Bob").ok());
    EXPECT_TRUE(cdd->add_password("Bob", "Ty7e", PrivacyLevel::kHigh).ok());
  }
};

TEST(DistributorTelemetryTest, PerProviderHistogramsCoverEveryProviderUsed) {
  ObsFixture f;
  // PL3 chunks are 1 KiB -> 64 chunks.
  const Bytes data = payload_of(64 * 1024);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  OpReport put_report;
  ASSERT_TRUE(
      f.cdd->put_file("Bob", "Ty7e", "big", data, opts, &put_report).ok());
  Result<Bytes> back = f.cdd->get_file("Bob", "Ty7e", "big");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(put_report.chunks, 64u);

  const MetricsRegistry::Snapshot s = f.sink->metrics().snapshot();
  std::size_t used = 0;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    const auto& prov = f.registry.at(p);
    const std::string prefix = "provider." + prov.descriptor().name + ".";
    if (prov.counters().puts.load() > 0) {
      ++used;
      ASSERT_TRUE(s.histograms.count(prefix + "put_ns")) << prefix;
      EXPECT_GT(s.histograms.at(prefix + "put_ns").count, 0u) << prefix;
      EXPECT_GT(s.counters.at(prefix + "requests"), 0u) << prefix;
      EXPECT_GT(s.counters.at(prefix + "bytes_in"), 0u) << prefix;
    }
    if (prov.counters().gets.load() > 0) {
      ASSERT_TRUE(s.histograms.count(prefix + "get_ns")) << prefix;
      EXPECT_GT(s.histograms.at(prefix + "get_ns").count, 0u) << prefix;
    }
  }
  EXPECT_GT(used, 0u);
  // Placement instrumented: one decision per chunk for the put.
  EXPECT_GE(s.counters.at("placement.decisions"), 64u);
  // Ops counted, nothing left in flight.
  EXPECT_EQ(s.counters.at("cdd.put_file_total"), 1u);
  EXPECT_EQ(s.counters.at("cdd.get_file_total"), 1u);
  EXPECT_EQ(s.gauges.at("cdd.inflight_ops"), 0);
}

TEST(ProviderTelemetryTest, SplitsInjectedFailuresFromIoErrors) {
  auto sink = std::make_shared<Telemetry>();
  storage::ProviderDescriptor d;
  d.name = "Split";
  storage::SimCloudProvider prov(std::move(d), storage::LatencyModel{}, 5);
  prov.attach_telemetry(sink);
  ASSERT_TRUE(prov.put(1, Bytes{1, 2, 3}).ok());

  // A fault-model failure is the environment misbehaving: it lands in
  // injected_failures, never in io_errors.
  prov.set_request_failure_prob(1.0);
  EXPECT_FALSE(prov.get(1).ok());
  EXPECT_EQ(prov.counters().injected_failures.load(), 1u);
  EXPECT_EQ(prov.counters().io_errors.load(), 0u);

  // A store miss is the provider's own I/O failing: io_errors only.
  prov.set_request_failure_prob(0.0);
  EXPECT_FALSE(prov.get(999).ok());
  EXPECT_EQ(prov.counters().io_errors.load(), 1u);
  EXPECT_EQ(prov.counters().injected_failures.load(), 1u);

  // Both legs export under the provider's metric prefix.
  const MetricsRegistry::Snapshot s = sink->metrics().snapshot();
  EXPECT_EQ(s.counters.at("provider.Split.injected_failures"), 1u);
  EXPECT_EQ(s.counters.at("provider.Split.io_errors"), 1u);
  EXPECT_EQ(s.counters.at("provider.Split.errors"), 2u);
}

TEST(DistributorTelemetryTest, ChildSpansCoverRootSimTime) {
  ObsFixture f;
  const Bytes data = payload_of(64 * 1024);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  OpReport report;
  ASSERT_TRUE(
      f.cdd->put_file("Bob", "Ty7e", "cover", data, opts, &report).ok());

  const std::vector<SpanRecord> spans = f.sink->tracer().snapshot();
  const SpanRecord* root = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.name == "put_file" && s.parent_id == 0) root = &s;
  }
  ASSERT_NE(root, nullptr);
  std::int64_t child_sim = 0;
  std::size_t chunk_children = 0;
  for (const SpanRecord& s : spans) {
    if (s.parent_id == root->span_id && s.op_id == root->op_id) {
      child_sim += s.sim_ns;
      ++chunk_children;
    }
  }
  EXPECT_EQ(chunk_children, 64u) << "one chunk span per chunk";
  ASSERT_GT(root->sim_ns, 0);
  EXPECT_GE(static_cast<double>(child_sim),
            0.95 * static_cast<double>(root->sim_ns));
  // Report derives from the same accumulator as the root span.
  EXPECT_EQ(report.sim_time_serial.count(), root->sim_ns);
  EXPECT_EQ(report.bytes_logical, root->bytes);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(root->outcome, ErrorCode::kOk);
}

TEST(DistributorTelemetryTest, ShardSpansCarryProviderAndKind) {
  ObsFixture f;
  const Bytes data = payload_of(4 * 1024);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "kinds", data, opts).ok());
  std::size_t data_shards = 0;
  std::size_t parity_shards = 0;
  for (const SpanRecord& s : f.sink->tracer().snapshot()) {
    if (s.name != "shard_put") continue;
    EXPECT_NE(s.provider, kNoProvider);
    if (s.shard_kind == ShardKind::kData) ++data_shards;
    if (s.shard_kind == ShardKind::kParity) ++parity_shards;
  }
  // 4 chunks x RAID-5 (k=3, p=1).
  EXPECT_EQ(data_shards, 12u);
  EXPECT_EQ(parity_shards, 4u);
}

TEST(DistributorTelemetryTest, CorruptDataShardTripsParityFallback) {
  ObsFixture f;
  const Bytes data = payload_of(900);  // single chunk
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  ASSERT_TRUE(f.cdd->put_file("Bob", "Ty7e", "dmg", data, opts).ok());
  const auto ref = f.cdd->metadata().find_chunk("Bob", "dmg", 0);
  ASSERT_TRUE(ref.has_value());
  Result<core::ChunkEntry> entry =
      f.cdd->metadata().chunk_entry(ref->chunk_index);
  ASSERT_TRUE(entry.ok());
  // stripe[0] is a data shard (encode lays shards out data-first).
  const core::ShardLocation loc = entry.value().stripe[0];
  ASSERT_TRUE(f.registry.at(loc.provider)
                  .corrupt_object(loc.virtual_id, 0)
                  .ok());

  EXPECT_EQ(f.sink->metrics().counter("cdd.parity_fallbacks").value(), 0u);
  OpReport report;
  Result<Bytes> back = f.cdd->get_chunk("Bob", "Ty7e", "dmg", 0, &report);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(equal(back.value(), data));
  EXPECT_EQ(f.sink->metrics().counter("cdd.parity_fallbacks").value(), 1u);
  EXPECT_GT(report.parity_reads, 0u);
}

TEST(DistributorTelemetryTest, FailedPutRollsBackAndCountsIt) {
  ObsFixture f;
  for (ProviderIndex p = 0; p < f.registry.size(); ++p) {
    f.registry.at(p).set_online(false);
  }
  const Bytes data = payload_of(4 * 1024);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  OpReport report;
  Status st = f.cdd->put_file("Bob", "Ty7e", "doomed", data, opts, &report);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(report.rolled_back);
  EXPECT_EQ(f.sink->metrics().counter("cdd.rollbacks").value(), 1u);
  EXPECT_EQ(f.sink->metrics().counter("cdd.put_file_errors").value(), 1u);
  EXPECT_EQ(f.sink->metrics().gauge("cdd.inflight_ops").value(), 0);
  // The root span carries the failure outcome.
  bool saw_failed_root = false;
  for (const SpanRecord& s : f.sink->tracer().snapshot()) {
    if (s.name == "put_file" && s.parent_id == 0) {
      saw_failed_root = true;
      EXPECT_NE(s.outcome, ErrorCode::kOk);
    }
  }
  EXPECT_TRUE(saw_failed_root);
}

TEST(DistributorTelemetryTest, DisabledTelemetryRecordsNothingButReports) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config;
  config.stripe_data_shards = 3;
  config.worker_threads = 2;
  config.telemetry = false;
  CloudDataDistributor cdd(registry, config);
  ASSERT_TRUE(cdd.register_client("Bob").ok());
  ASSERT_TRUE(cdd.add_password("Bob", "Ty7e", PrivacyLevel::kHigh).ok());
  const Bytes data = payload_of(4 * 1024);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  OpReport report;
  ASSERT_TRUE(cdd.put_file("Bob", "Ty7e", "quiet", data, opts, &report).ok());
  // OpReport still works off the shared accumulator...
  EXPECT_EQ(report.chunks, 4u);
  EXPECT_GT(report.sim_time_serial.count(), 0);
  // ...but the (private, disabled) sink stays empty.
  EXPECT_EQ(cdd.telemetry()->tracer().recorded(), 0u);
  EXPECT_TRUE(cdd.telemetry()->metrics().snapshot().counters.empty());
}

TEST(DistributorTelemetryTest, AuthFailuresAreCounted) {
  ObsFixture f;
  const Bytes data = payload_of(100);
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  EXPECT_FALSE(f.cdd->put_file("Bob", "wrong", "x", data, opts).ok());
  EXPECT_EQ(f.sink->metrics().counter("cdd.auth_failures").value(), 1u);
}

}  // namespace
}  // namespace cshield::obs

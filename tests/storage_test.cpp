// Tests for the simulated cloud-provider substrate: MemoryStore semantics,
// provider latency/fault models, registry eligibility and cost accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/object_store.hpp"
#include "util/stats.hpp"
#include "storage/provider.hpp"
#include "storage/provider_registry.hpp"

namespace cshield::storage {
namespace {

// --- MemoryStore ------------------------------------------------------------

TEST(MemoryStoreTest, PutGetRoundTrip) {
  MemoryStore store;
  ASSERT_TRUE(store.put(42, to_bytes("payload")).ok());
  Result<Bytes> r = store.get(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(r.value()), "payload");
}

TEST(MemoryStoreTest, GetMissingIsNotFound) {
  MemoryStore store;
  EXPECT_EQ(store.get(1).status().code(), ErrorCode::kNotFound);
}

TEST(MemoryStoreTest, PutOverwrites) {
  MemoryStore store;
  ASSERT_TRUE(store.put(1, to_bytes("old")).ok());
  ASSERT_TRUE(store.put(1, to_bytes("newer")).ok());
  EXPECT_EQ(to_string(store.get(1).value()), "newer");
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), 5u);
}

TEST(MemoryStoreTest, RemoveDeletes) {
  MemoryStore store;
  ASSERT_TRUE(store.put(1, to_bytes("x")).ok());
  ASSERT_TRUE(store.remove(1).ok());
  EXPECT_FALSE(store.contains(1));
  EXPECT_EQ(store.remove(1).code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.bytes_stored(), 0u);
}

TEST(MemoryStoreTest, ListIdsReturnsAll) {
  MemoryStore store;
  for (VirtualId id : {5u, 9u, 2u}) {
    ASSERT_TRUE(store.put(id, to_bytes("d")).ok());
  }
  auto ids = store.list_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<VirtualId>{2, 5, 9}));
}

TEST(MemoryStoreTest, WipeDropsEverything) {
  MemoryStore store;
  ASSERT_TRUE(store.put(1, to_bytes("abc")).ok());
  store.wipe();
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_EQ(store.bytes_stored(), 0u);
}

TEST(MemoryStoreTest, FlipByteCorruptsInPlace) {
  MemoryStore store;
  ASSERT_TRUE(store.put(1, to_bytes("abc")).ok());
  ASSERT_TRUE(store.flip_byte(1, 1).ok());
  EXPECT_NE(to_string(store.get(1).value()), "abc");
  EXPECT_EQ(store.flip_byte(1, 99).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(store.flip_byte(2, 0).code(), ErrorCode::kNotFound);
}

TEST(MemoryStoreTest, BatchedPutAndGetMatchPerOpSemantics) {
  MemoryStore store;
  ASSERT_TRUE(store.put(2, to_bytes("stale")).ok());
  // BatchPut holds views: the payloads must outlive the call.
  const Bytes one = to_bytes("one");
  const Bytes two = to_bytes("two");
  const Bytes three = to_bytes("three");
  const std::vector<BatchPut> batch = {{1, one}, {2, two}, {3, three}};
  const std::vector<Status> statuses = store.put_many(batch);
  ASSERT_EQ(statuses.size(), 3u);
  for (const Status& st : statuses) EXPECT_TRUE(st.ok());
  EXPECT_EQ(store.object_count(), 3u);
  EXPECT_EQ(to_string(store.get(2).value()), "two");  // overwrite, like put()

  const std::vector<Result<Bytes>> results = store.get_many({3, 99, 1});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(to_string(results[0].value()), "three");
  EXPECT_EQ(results[1].status().code(), ErrorCode::kNotFound);  // item-level miss
  EXPECT_EQ(to_string(results[2].value()), "one");
}

// --- LatencyModel -----------------------------------------------------------

TEST(LatencyModelTest, ServiceTimeScalesWithBytes) {
  LatencyModel model;
  model.base_latency = SimDuration(std::chrono::microseconds(100));
  model.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  model.jitter_mean = SimDuration(0);
  Rng rng(1);
  const SimDuration small = model.service_time(1000, rng);
  const SimDuration large = model.service_time(1000000, rng);
  // 1 MB at 1 MB/s = 1 s transfer; 1 KB = 1 ms.
  EXPECT_NEAR(static_cast<double>(small.count()), 100e3 + 1e6, 1e3);
  EXPECT_NEAR(static_cast<double>(large.count()), 100e3 + 1e9, 1e6);
}

TEST(LatencyModelTest, JitterIsNonNegativeAndVaries) {
  LatencyModel model;
  model.base_latency = SimDuration(0);
  model.bandwidth_bytes_per_sec = 0.0;  // isolate jitter
  model.jitter_mean = SimDuration(std::chrono::microseconds(100));
  Rng rng(2);
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    const auto t = model.service_time(0, rng);
    EXPECT_GE(t.count(), 0);
    s.add(static_cast<double>(t.count()));
  }
  EXPECT_NEAR(s.mean(), 100e3, 10e3);  // mean ~ jitter_mean
  EXPECT_GT(s.stddev(), 0.0);
}

// --- SimCloudProvider --------------------------------------------------------

ProviderDescriptor test_descriptor() {
  ProviderDescriptor d;
  d.name = "TestCloud";
  d.privacy_level = PrivacyLevel::kModerate;
  d.cost_level = CostLevel::kCheap;
  d.price_per_gb_month = 0.02;
  return d;
}

TEST(ProviderTest, PutGetRemoveFlow) {
  SimCloudProvider p(test_descriptor());
  SimDuration t{0};
  ASSERT_TRUE(p.put(7, to_bytes("chunk"), &t).ok());
  EXPECT_GT(t.count(), 0);
  Result<Bytes> r = p.get(7, &t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(r.value()), "chunk");
  ASSERT_TRUE(p.remove(7).ok());
  EXPECT_FALSE(p.contains(7));
}

TEST(ProviderTest, OutageMakesRequestsUnavailable) {
  SimCloudProvider p(test_descriptor());
  ASSERT_TRUE(p.put(1, to_bytes("x")).ok());
  p.set_online(false);
  EXPECT_EQ(p.put(2, to_bytes("y")).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(p.get(1).status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(p.remove(1).code(), ErrorCode::kUnavailable);
  p.set_online(true);
  // Data survives a temporary outage.
  EXPECT_TRUE(p.get(1).ok());
}

TEST(ProviderTest, GoOutOfBusinessLosesData) {
  SimCloudProvider p(test_descriptor());
  ASSERT_TRUE(p.put(1, to_bytes("x")).ok());
  p.go_out_of_business();
  EXPECT_FALSE(p.online());
  EXPECT_EQ(p.object_count(), 0u);
}

TEST(ProviderTest, TransientFailuresFollowProbability) {
  SimCloudProvider p(test_descriptor());
  ASSERT_TRUE(p.put(1, to_bytes("x")).ok());
  p.set_request_failure_prob(0.5);
  int failures = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!p.get(1).ok()) ++failures;
  }
  EXPECT_GT(failures, 800);
  EXPECT_LT(failures, 1200);
}

TEST(ProviderTest, CountersTrackTraffic) {
  SimCloudProvider p(test_descriptor());
  ASSERT_TRUE(p.put(1, to_bytes("12345")).ok());
  ASSERT_TRUE(p.get(1).ok());
  ASSERT_TRUE(p.get(1).ok());
  EXPECT_EQ(p.counters().puts.load(), 1u);
  EXPECT_EQ(p.counters().gets.load(), 2u);
  EXPECT_EQ(p.counters().bytes_in.load(), 5u);
  EXPECT_EQ(p.counters().bytes_out.load(), 10u);
}

TEST(ProviderTest, BatchedPutCostsOneProviderRequest) {
  SimCloudProvider p(test_descriptor());
  const Bytes a = to_bytes("aaaa");
  const Bytes b = to_bytes("bb");
  const Bytes c = to_bytes("c");
  SimDuration t{0};
  const std::vector<Status> statuses =
      p.put_many({{10, a}, {11, b}, {12, c}}, &t);
  ASSERT_EQ(statuses.size(), 3u);
  for (const Status& st : statuses) EXPECT_TRUE(st.ok());
  EXPECT_GT(t.count(), 0);
  // One round trip, one fault-sequence tick -- but per-object traffic still
  // counts item by item, exactly as three put() calls would.
  EXPECT_EQ(p.fault_requests(), 1u);
  EXPECT_EQ(p.counters().batch_requests.load(), 1u);
  EXPECT_EQ(p.counters().puts.load(), 3u);
  EXPECT_EQ(p.counters().bytes_in.load(), 7u);

  const std::vector<Result<Bytes>> results = p.get_many({10, 11, 12});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(to_string(results[0].value()), "aaaa");
  EXPECT_EQ(to_string(results[1].value()), "bb");
  EXPECT_EQ(to_string(results[2].value()), "c");
  EXPECT_EQ(p.fault_requests(), 2u);
  EXPECT_EQ(p.counters().batch_requests.load(), 2u);
  EXPECT_EQ(p.counters().gets.load(), 3u);
  EXPECT_EQ(p.counters().bytes_out.load(), 7u);
}

TEST(ProviderTest, BatchLevelFaultFailsEveryItem) {
  SimCloudProvider p(test_descriptor());
  const Bytes x = to_bytes("x");
  ASSERT_TRUE(p.put(1, x).ok());
  p.set_online(false);
  const std::vector<Status> statuses = p.put_many({{2, x}, {3, x}});
  ASSERT_EQ(statuses.size(), 2u);
  for (const Status& st : statuses) {
    EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  }
  // The whole batch was one rejected request: one injected failure, no
  // accepted puts, nothing stored.
  EXPECT_EQ(p.counters().injected_failures.load(), 1u);
  EXPECT_EQ(p.counters().puts.load(), 1u);
  EXPECT_FALSE(p.contains(2));

  const std::vector<Result<Bytes>> results = p.get_many({1});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status().code(), ErrorCode::kUnavailable);
  p.set_online(true);
  EXPECT_TRUE(p.get_many({1})[0].ok());
}

TEST(ProviderTest, MonthlyCostTracksBytes) {
  auto d = test_descriptor();
  d.price_per_gb_month = 1.0;
  SimCloudProvider p(std::move(d));
  const Bytes gb_ish(1024 * 1024, 0);  // 1 MiB
  ASSERT_TRUE(p.put(1, gb_ish).ok());
  EXPECT_NEAR(p.monthly_cost_usd(), 1.0 / 1024.0, 1e-9);
}

TEST(ProviderTest, CorruptObjectFlipsStoredByte) {
  SimCloudProvider p(test_descriptor());
  ASSERT_TRUE(p.put(1, to_bytes("abcd")).ok());
  ASSERT_TRUE(p.corrupt_object(1, 2).ok());
  EXPECT_NE(to_string(p.get(1).value()), "abcd");
}

// --- ProviderRegistry ----------------------------------------------------------

TEST(RegistryTest, EligibilityRespectsPrivacyLevels) {
  ProviderRegistry reg;
  ProviderDescriptor high;
  high.name = "High";
  high.privacy_level = PrivacyLevel::kHigh;
  ProviderDescriptor low;
  low.name = "Low";
  low.privacy_level = PrivacyLevel::kLow;
  reg.add(std::move(high));
  reg.add(std::move(low));

  EXPECT_EQ(reg.eligible_for(PrivacyLevel::kHigh).size(), 1u);
  EXPECT_EQ(reg.eligible_for(PrivacyLevel::kLow).size(), 2u);
  EXPECT_EQ(reg.eligible_for(PrivacyLevel::kPublic).size(), 2u);
}

TEST(RegistryTest, FindByName) {
  ProviderRegistry reg = make_default_registry(4);
  EXPECT_EQ(reg.find("AWS"), 1u);
  EXPECT_EQ(reg.find("Nowhere"), kNoProvider);
}

TEST(RegistryTest, DefaultRegistryCoversAllLevelsWhenLarge) {
  ProviderRegistry reg = make_default_registry(8);
  EXPECT_EQ(reg.size(), 8u);
  for (int pl = 0; pl < kNumPrivacyLevels; ++pl) {
    EXPECT_FALSE(reg.eligible_for(privacy_level_from_int(pl)).empty())
        << "no provider for PL" << pl;
  }
  // High-sensitivity data has strictly fewer homes than public data.
  EXPECT_LT(reg.eligible_for(PrivacyLevel::kHigh).size(),
            reg.eligible_for(PrivacyLevel::kPublic).size());
}

TEST(RegistryTest, IndicesAreStable) {
  ProviderRegistry reg = make_default_registry(4);
  const std::string name0 = reg.at(0).descriptor().name;
  reg.add(ProviderDescriptor{"Extra", PrivacyLevel::kLow, CostLevel::kCheap,
                             0.01});
  EXPECT_EQ(reg.at(0).descriptor().name, name0);
  EXPECT_EQ(reg.size(), 5u);
}

TEST(RegistryTest, TotalCostAggregates) {
  ProviderRegistry reg = make_default_registry(3);
  const Bytes mb(1024 * 1024, 1);
  ASSERT_TRUE(reg.at(0).put(1, mb).ok());
  ASSERT_TRUE(reg.at(1).put(2, mb).ok());
  EXPECT_GT(reg.total_monthly_cost_usd(), 0.0);
}

TEST(RegistryTest, AtOutOfRangeThrows) {
  ProviderRegistry reg = make_default_registry(2);
  EXPECT_THROW((void)reg.at(5), std::invalid_argument);
}

}  // namespace
}  // namespace cshield::storage

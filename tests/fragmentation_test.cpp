// Differential / property battery for the fast-fragmentation protection
// codec (crypto/fragmentation.hpp).
//
// The production entangle runs on the dispatched GF(256) kernels; the
// pinned reference here is a from-scratch reimplementation of the
// documented scheme -- SplitMix64-finalizer whitening, then a forward and a
// backward mul_add sweep with the salted coefficient schedule -- built on
// gf256::mul_slow and byte loops only. Any drift in the wire-frozen scheme
// (constants, sweep order, ragged-tail handling) breaks these tests.
//
// Covered:
//   * differential sweep: entangle vs reference over fragment counts 2..16
//     x lengths 0..67 x unaligned buffer phases;
//   * arm-vs-arm bit identity through the rebindable kernel hook;
//   * round-trip (detangle . entangle == id) including ragged tails;
//   * all-or-nothing diffusion: every output fragment depends on every
//     input fragment;
//   * chi-squared near-uniformity of any single-provider fragment's byte
//     histogram, on a deliberately low-entropy payload;
//   * edge cases: empty payload, one fragment, more fragments than bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "crypto/fragmentation.hpp"
#include "crypto/gf256.hpp"
#include "crypto/gf256_kernels.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

namespace cshield::crypto::fragmentation {
namespace {

namespace kern = gf256::kernels;
using kern::Arm;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::vector<Arm> available_arms() {
  std::vector<Arm> arms;
  for (Arm a : {Arm::kScalar, Arm::kSwar, Arm::kSsse3, Arm::kAvx2}) {
    if (kern::arm_available(a)) arms.push_back(a);
  }
  return arms;
}

// --- pinned reference (independent of the production code) -----------------

std::uint64_t ref_mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void ref_whiten(Bytes& data, std::uint64_t nonce) {
  constexpr std::uint64_t kPhi = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t block = i / 8;
    const std::uint64_t ks = ref_mix64(nonce ^ (kPhi * (block + 1)));
    data[i] ^= static_cast<std::uint8_t>(ks >> (8 * (i % 8)));
  }
}

std::uint8_t ref_coeff(std::size_t i, std::uint64_t salt) {
  return static_cast<std::uint8_t>(1 + ref_mix64(salt ^ i) % 255);
}

std::uint8_t ref_forward(std::size_t i) { return ref_coeff(i, 0xF0A4C1D5ULL); }
std::uint8_t ref_backward(std::size_t i) { return ref_coeff(i, 0xB1E55EDULL); }

std::size_t ref_frag_len(std::size_t n, std::size_t len, std::size_t i) {
  const std::size_t begin = i * len;
  return begin >= n ? 0 : std::min(len, n - begin);
}

/// dst_frag[j] ^= mul_slow(c, src_frag[j]) over the overlap of the two
/// ragged fragments.
void ref_mul_add(Bytes& data, std::size_t n, std::size_t len, std::size_t dst,
                 std::size_t src, std::uint8_t c) {
  const std::size_t m =
      std::min(ref_frag_len(n, len, dst), ref_frag_len(n, len, src));
  for (std::size_t j = 0; j < m; ++j) {
    data[dst * len + j] = static_cast<std::uint8_t>(
        data[dst * len + j] ^ gf256::mul_slow(c, data[src * len + j]));
  }
}

Bytes ref_entangle(Bytes data, std::size_t fragments, std::uint64_t nonce) {
  ref_whiten(data, nonce);
  const std::size_t n = data.size();
  const std::size_t k = std::max<std::size_t>(1, fragments);
  if (k == 1 || n == 0) return data;
  const std::size_t len = (n + k - 1) / k;
  for (std::size_t i = 1; i < k; ++i) {
    ref_mul_add(data, n, len, i, i - 1, ref_forward(i));
  }
  for (std::size_t i = k - 1; i-- > 0;) {
    ref_mul_add(data, n, len, i, i + 1, ref_backward(i));
  }
  return data;
}

// --- coefficient schedule ---------------------------------------------------

TEST(FragmentationScheduleTest, CoefficientsMatchPinnedFormulaAndAreNonzero) {
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(forward_coeff(i), ref_forward(i)) << i;
    EXPECT_EQ(backward_coeff(i), ref_backward(i)) << i;
    EXPECT_NE(forward_coeff(i), 0) << i;
    EXPECT_NE(backward_coeff(i), 0) << i;
  }
  // The two schedules are genuinely distinct streams.
  std::size_t differing = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    differing += forward_coeff(i) != backward_coeff(i) ? 1 : 0;
  }
  EXPECT_GT(differing, 48u);
}

// --- differential sweep -----------------------------------------------------

// Fragment counts 2..16 x payload lengths 0..67 x four buffer phases: the
// production entangle (dispatched kernels, in-place over the arena) must be
// byte-identical to the mul_slow reference. Phases place the payload at an
// unaligned offset inside a larger allocation so the kernels see misaligned
// pointers.
TEST(FragmentationDifferentialTest, EntangleMatchesPinnedReference) {
  for (std::size_t k = 2; k <= 16; ++k) {
    for (std::size_t n = 0; n <= 67; ++n) {
      for (std::size_t phase = 0; phase < 4; ++phase) {
        const std::uint64_t nonce = 0xD1FF00ULL + k * 1000 + n * 8 + phase;
        const Bytes payload = random_bytes(n, nonce);
        Bytes arena = random_bytes(n + 16, nonce + 1);
        std::copy(payload.begin(), payload.end(), arena.begin() + phase);
        entangle(arena.data() + phase, n, k, nonce);
        const Bytes expected = ref_entangle(payload, k, nonce);
        ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                               arena.begin() + phase))
            << "k=" << k << " n=" << n << " phase=" << phase;
      }
    }
  }
}

TEST(FragmentationDifferentialTest, DetangleInvertsReferenceEntangle) {
  for (std::size_t k = 2; k <= 16; ++k) {
    for (std::size_t n = 0; n <= 67; ++n) {
      const std::uint64_t nonce = 0xDE7A76ULL + k * 100 + n;
      const Bytes payload = random_bytes(n, nonce);
      Bytes round = ref_entangle(payload, k, nonce);
      detangle(round, k, nonce);
      EXPECT_EQ(round, payload) << "k=" << k << " n=" << n;
    }
  }
}

// --- arm-vs-arm bit identity ------------------------------------------------

// Rebinds the dispatcher to every arm the host can run; the entangled arena
// must be bit-identical across arms (scalar is the baseline). Sizes cross
// the SIMD inner-loop widths and leave ragged tails.
TEST(FragmentationArmTest, AllArmsBitIdentical) {
  for (std::size_t k : {2u, 3u, 5u, 8u, 16u}) {
    for (std::size_t n : {65u, 1024u, 4096u + 37u}) {
      const std::uint64_t nonce = 0xA2AB17ULL + k * 31 + n;
      const Bytes payload = random_bytes(n, nonce);

      const Arm prev = kern::set_active_arm(Arm::kScalar);
      Bytes baseline = payload;
      entangle(baseline, k, nonce);
      for (Arm arm : available_arms()) {
        kern::set_active_arm(arm);
        Bytes got = payload;
        entangle(got, k, nonce);
        EXPECT_EQ(got, baseline)
            << "arm=" << cpu::simd_level_name(arm) << " k=" << k
            << " n=" << n;
        detangle(got, k, nonce);
        EXPECT_EQ(got, payload)
            << "arm=" << cpu::simd_level_name(arm) << " k=" << k
            << " n=" << n;
      }
      kern::set_active_arm(prev);
    }
  }
}

// --- properties -------------------------------------------------------------

TEST(FragmentationPropertyTest, RoundTripRandomized) {
  Rng rng(0x5EED);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.below(17));
    const std::size_t n = static_cast<std::size_t>(rng.below(3000));
    const std::uint64_t nonce = rng.next();
    const Bytes payload = random_bytes(n, nonce ^ trial);
    Bytes buf = payload;
    entangle(buf, k, nonce);
    if (n >= 16 && k >= 1) EXPECT_NE(buf, payload);  // whitening happened
    detangle(buf, k, nonce);
    EXPECT_EQ(buf, payload) << "k=" << k << " n=" << n;
  }
}

// All-or-nothing diffusion: flip one input byte in ANY fragment and every
// output fragment changes. (After the forward sweep fragment i depends on
// fragments 0..i; the backward sweep then chains the tail back in, so every
// output fragment is a full-rank combination of all k inputs.)
TEST(FragmentationPropertyTest, EveryOutputFragmentDependsOnEveryInput) {
  const std::size_t k = 5;
  const std::size_t n = 5 * 64;
  const std::size_t len = n / k;
  const std::uint64_t nonce = 0xA040;
  const Bytes payload = random_bytes(n, 7);
  Bytes base = payload;
  entangle(base, k, nonce);
  for (std::size_t touched = 0; touched < k; ++touched) {
    Bytes mutated = payload;
    mutated[touched * len + 3] ^= 0x01;
    entangle(mutated, k, nonce);
    for (std::size_t out = 0; out < k; ++out) {
      const bool differs = !std::equal(mutated.begin() + out * len,
                                       mutated.begin() + (out + 1) * len,
                                       base.begin() + out * len);
      EXPECT_TRUE(differs) << "input frag " << touched
                           << " did not diffuse into output frag " << out;
    }
  }
}

// A provider holding any single fragment sees a near-uniform byte
// histogram even for a pathologically structured payload: chi-squared
// against uniform over 256 bins stays within ~4 sigma of the df=255
// expectation for every fragment.
TEST(FragmentationPropertyTest, SingleFragmentHistogramNearUniform) {
  const std::size_t k = 4;
  const std::size_t n = 64 * 1024;
  Bytes payload(n);
  // Low-entropy input: repeating ASCII with long zero runs.
  const std::string motif = "AAAA bidding-record 000000000000";
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = (i % 4 == 0) ? 0 : static_cast<std::uint8_t>(
                                        motif[i % motif.size()]);
  }
  entangle(payload, k, 0xC4157A7ULL);
  const std::size_t frag_len = n / k;
  for (std::size_t f = 0; f < k; ++f) {
    std::array<std::size_t, 256> hist{};
    for (std::size_t j = 0; j < frag_len; ++j) {
      ++hist[payload[f * frag_len + j]];
    }
    const double expected =
        static_cast<double>(frag_len) / 256.0;  // 64 per bin
    double chi2 = 0.0;
    for (std::size_t b = 0; b < 256; ++b) {
      const double d = static_cast<double>(hist[b]) - expected;
      chi2 += d * d / expected;
    }
    // df = 255: mean 255, sd = sqrt(2*255) ~ 22.6; 350 is ~4.2 sigma.
    EXPECT_LT(chi2, 350.0) << "fragment " << f;
    EXPECT_GT(chi2, 120.0) << "fragment " << f;  // and not suspiciously flat
  }
}

// --- edge cases -------------------------------------------------------------

TEST(FragmentationEdgeTest, EmptyPayloadIsNoOp) {
  Bytes empty;
  entangle(empty, 4, 1);
  detangle(empty, 4, 1);
  EXPECT_TRUE(empty.empty());
}

TEST(FragmentationEdgeTest, OneOrZeroFragmentsIsWhiteningOnly) {
  const Bytes payload = random_bytes(100, 42);
  Bytes whiten_ref = payload;
  ref_whiten(whiten_ref, 99);
  for (std::size_t k : {0u, 1u}) {
    Bytes buf = payload;
    entangle(buf, k, 99);
    EXPECT_EQ(buf, whiten_ref) << "k=" << k;
    detangle(buf, k, 99);
    EXPECT_EQ(buf, payload) << "k=" << k;
  }
}

TEST(FragmentationEdgeTest, MoreFragmentsThanBytesRoundTrips) {
  for (std::size_t n : {1u, 2u, 3u, 7u}) {
    const Bytes payload = random_bytes(n, n);
    Bytes buf = payload;
    entangle(buf, 16, 5);
    const Bytes expected = ref_entangle(payload, 16, 5);
    EXPECT_EQ(buf, expected) << "n=" << n;
    detangle(buf, 16, 5);
    EXPECT_EQ(buf, payload) << "n=" << n;
  }
}

}  // namespace
}  // namespace cshield::crypto::fragmentation
